package pos

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"github.com/eactors/eactors-go/internal/ecrypto"
)

func openTestStore(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.SizeBytes == 0 {
		opts.SizeBytes = 256 * 1024
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestSetGet(t *testing.T) {
	s := openTestStore(t, Options{})
	if err := s.Set([]byte("k1"), []byte("v1")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	got, ok, err := s.Get([]byte("k1"))
	if err != nil || !ok || string(got) != "v1" {
		t.Fatalf("Get = %q ok=%v err=%v", got, ok, err)
	}
	if _, ok, _ := s.Get([]byte("missing")); ok {
		t.Fatal("missing key found")
	}
}

func TestSetOverwriteReturnsNewest(t *testing.T) {
	s := openTestStore(t, Options{})
	for i := 0; i < 10; i++ {
		if err := s.Set([]byte("counter"), []byte{byte(i)}); err != nil {
			t.Fatalf("Set #%d: %v", i, err)
		}
	}
	got, ok, err := s.Get([]byte("counter"))
	if err != nil || !ok || got[0] != 9 {
		t.Fatalf("Get = %v ok=%v err=%v, want [9]", got, ok, err)
	}
}

func TestDelete(t *testing.T) {
	s := openTestStore(t, Options{})
	if err := s.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	found, err := s.Delete([]byte("k"))
	if err != nil || !found {
		t.Fatalf("Delete = %v, %v", found, err)
	}
	if _, ok, _ := s.Get([]byte("k")); ok {
		t.Fatal("deleted key still found")
	}
	// Delete of an absent key reports false.
	found, err = s.Delete([]byte("never"))
	if err != nil || found {
		t.Fatalf("Delete(absent) = %v, %v", found, err)
	}
	// Re-set after delete resurrects the key.
	if err := s.Set([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := s.Get([]byte("k"))
	if !ok || string(got) != "v2" {
		t.Fatalf("resurrected Get = %q ok=%v", got, ok)
	}
}

func TestStoreFull(t *testing.T) {
	s := openTestStore(t, Options{SizeBytes: headerPages*pageSize + pageSize, RegionSize: 1024})
	if s.Regions() != 4 {
		t.Fatalf("Regions = %d, want 4", s.Regions())
	}
	for i := 0; i < 4; i++ {
		if err := s.Set([]byte{byte(i)}, []byte("x")); err != nil {
			t.Fatalf("Set #%d: %v", i, err)
		}
	}
	if err := s.Set([]byte("overflow"), []byte("x")); !errors.Is(err, ErrFull) {
		t.Fatalf("Set on full store err = %v, want ErrFull", err)
	}
}

func TestCleanReclaimsOutdated(t *testing.T) {
	s := openTestStore(t, Options{SizeBytes: headerPages*pageSize + pageSize, RegionSize: 1024})
	// Fill with 4 versions of the same key.
	for i := 0; i < 4; i++ {
		if err := s.Set([]byte("k"), []byte{byte(i)}); err != nil {
			t.Fatalf("Set #%d: %v", i, err)
		}
	}
	if err := s.Set([]byte("k"), []byte{9}); !errors.Is(err, ErrFull) {
		t.Fatalf("expected full store, got %v", err)
	}
	reclaimed, err := s.Clean()
	if err != nil {
		t.Fatalf("Clean: %v", err)
	}
	if reclaimed != 3 {
		t.Fatalf("Clean reclaimed %d, want 3 (keep newest)", reclaimed)
	}
	// The newest version must survive.
	got, ok, _ := s.Get([]byte("k"))
	if !ok || got[0] != 3 {
		t.Fatalf("Get after clean = %v ok=%v", got, ok)
	}
	// And there is room again.
	if err := s.Set([]byte("k2"), []byte("fresh")); err != nil {
		t.Fatalf("Set after clean: %v", err)
	}
}

func TestCleanHonoursGraceCounters(t *testing.T) {
	s := openTestStore(t, Options{})
	reader := s.RegisterReader()
	reader.Tick() // reader is current at epoch 0

	if err := s.Set([]byte("k"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Set([]byte("k"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	// The reader has not ticked since the update: nothing may be freed.
	reclaimed, err := s.Clean()
	if err != nil {
		t.Fatalf("Clean: %v", err)
	}
	if reclaimed != 0 {
		t.Fatalf("Clean reclaimed %d before reader ticked, want 0", reclaimed)
	}
	// After the reader passes the update, the old version is fair game.
	reader.Tick()
	reclaimed, err = s.Clean()
	if err != nil {
		t.Fatalf("Clean: %v", err)
	}
	if reclaimed != 1 {
		t.Fatalf("Clean reclaimed %d after tick, want 1", reclaimed)
	}
	s.UnregisterReader(reader)
}

func TestCleanWithLaggingReaderAmongSeveral(t *testing.T) {
	s := openTestStore(t, Options{})
	fast := s.RegisterReader()
	slow := s.RegisterReader()
	if err := s.Set([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Set([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	fast.Tick()
	// slow never ticked → grace epoch stays at 0 → no reclamation.
	if n, _ := s.Clean(); n != 0 {
		t.Fatalf("Clean with lagging reader reclaimed %d", n)
	}
	slow.Tick()
	if n, _ := s.Clean(); n != 1 {
		t.Fatalf("Clean after laggard ticked reclaimed %d, want 1", n)
	}
}

func TestPairTooLarge(t *testing.T) {
	s := openTestStore(t, Options{RegionSize: 128})
	if err := s.Set(make([]byte, 64), make([]byte, 64)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized Set err = %v, want ErrTooLarge", err)
	}
	if err := s.Set(make([]byte, 8), make([]byte, s.MaxPair()-8)); err != nil {
		t.Fatalf("max-size Set rejected: %v", err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.pos")
	s, err := Open(Options{Path: path, SizeBytes: 64 * 1024})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Set([]byte("persisted"), []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(Options{Path: path, SizeBytes: 64 * 1024})
	if err != nil {
		t.Fatalf("re-Open: %v", err)
	}
	defer s2.Close()
	got, ok, err := s2.Get([]byte("persisted"))
	if err != nil || !ok || string(got) != "yes" {
		t.Fatalf("Get after reopen = %q ok=%v err=%v", got, ok, err)
	}
}

func TestReopenGeometryMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.pos")
	s, err := Open(Options{Path: path, SizeBytes: 64 * 1024, Buckets: 32})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	if _, err := Open(Options{Path: path, SizeBytes: 64 * 1024, Buckets: 16}); err == nil {
		t.Fatal("bucket mismatch accepted on reopen")
	}
}

func TestEncryptedMode(t *testing.T) {
	var key [ecrypto.KeySize]byte
	copy(key[:], "0123456789abcdef0123456789abcdef")
	s := openTestStore(t, Options{EncryptionKey: &key})

	if err := s.Set([]byte("alice"), []byte("online")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	got, ok, err := s.Get([]byte("alice"))
	if err != nil || !ok || string(got) != "online" {
		t.Fatalf("Get = %q ok=%v err=%v", got, ok, err)
	}

	// Neither key nor value may appear in the raw store memory.
	if bytes.Contains(s.mem, []byte("alice")) {
		t.Fatal("plaintext key visible in encrypted store")
	}
	if bytes.Contains(s.mem, []byte("online")) {
		t.Fatal("plaintext value visible in encrypted store")
	}

	// Overwrite and delete work in encrypted mode too.
	if err := s.Set([]byte("alice"), []byte("away")); err != nil {
		t.Fatal(err)
	}
	got, ok, _ = s.Get([]byte("alice"))
	if !ok || string(got) != "away" {
		t.Fatalf("encrypted overwrite Get = %q", got)
	}
	if found, _ := s.Delete([]byte("alice")); !found {
		t.Fatal("encrypted delete missed")
	}
	if _, ok, _ := s.Get([]byte("alice")); ok {
		t.Fatal("deleted encrypted key still found")
	}
}

func TestEncryptedPersistence(t *testing.T) {
	var key [ecrypto.KeySize]byte
	copy(key[:], "another-32-byte-encryption-key!!")
	path := filepath.Join(t.TempDir(), "enc.pos")
	s, err := Open(Options{Path: path, SizeBytes: 64 * 1024, EncryptionKey: &key})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set([]byte("k"), []byte("sealed value")); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()

	s2, err := Open(Options{Path: path, SizeBytes: 64 * 1024, EncryptionKey: &key})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok, err := s2.Get([]byte("k"))
	if err != nil || !ok || string(got) != "sealed value" {
		t.Fatalf("encrypted reopen Get = %q ok=%v err=%v", got, ok, err)
	}

	// The wrong key must not read the data.
	var wrong [ecrypto.KeySize]byte
	s3, err := Open(Options{Path: path, SizeBytes: 64 * 1024, EncryptionKey: &wrong})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, ok, _ := s3.Get([]byte("k")); ok {
		t.Fatal("wrong key read encrypted data")
	}
}

func TestSealedKeySlot(t *testing.T) {
	s := openTestStore(t, Options{})
	if _, err := s.LoadSealedKey(); !errors.Is(err, ErrNoSealedKey) {
		t.Fatalf("LoadSealedKey on empty slot err = %v", err)
	}
	blob := []byte("sealed key material")
	if err := s.StoreSealedKey(blob); err != nil {
		t.Fatalf("StoreSealedKey: %v", err)
	}
	got, err := s.LoadSealedKey()
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("LoadSealedKey = %q err=%v", got, err)
	}
	if err := s.StoreSealedKey(make([]byte, pageSize)); err == nil {
		t.Fatal("oversized sealed blob accepted")
	}
}

func TestClosedStore(t *testing.T) {
	s := openTestStore(t, Options{})
	_ = s.Close()
	if err := s.Set([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Set after close err = %v", err)
	}
	if _, _, err := s.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close err = %v", err)
	}
	if _, err := s.Delete([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after close err = %v", err)
	}
	if _, err := s.Clean(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Clean after close err = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{SizeBytes: 100}); err == nil {
		t.Fatal("tiny store accepted")
	}
	if _, err := Open(Options{SizeBytes: 1 << 20, RegionSize: 8}); err == nil {
		t.Fatal("tiny region accepted")
	}
	if _, err := Open(Options{SizeBytes: 1 << 20, Buckets: -4}); err == nil {
		t.Fatal("negative buckets accepted")
	}
	// Too many buckets for the superblock page.
	if _, err := Open(Options{SizeBytes: 1 << 20, Buckets: 4096}); err == nil {
		t.Fatal("oversized bucket table accepted")
	}
}

func TestConcurrentSetGet(t *testing.T) {
	s := openTestStore(t, Options{SizeBytes: 4 << 20, Buckets: 16})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("worker-%d", id))
			for i := 0; i < 200; i++ {
				val := []byte(fmt.Sprintf("%d", i))
				if err := s.Set(key, val); err != nil {
					t.Errorf("Set: %v", err)
					return
				}
				got, ok, err := s.Get(key)
				if err != nil || !ok {
					t.Errorf("Get: ok=%v err=%v", ok, err)
					return
				}
				if !bytes.Equal(got, val) {
					t.Errorf("Get = %q, want %q (stale read)", got, val)
					return
				}
				if i%50 == 0 {
					if _, err := s.Clean(); err != nil {
						t.Errorf("Clean: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestStats(t *testing.T) {
	s := openTestStore(t, Options{})
	_ = s.Set([]byte("a"), []byte("1"))
	_ = s.Set([]byte("a"), []byte("2"))
	_, _, _ = s.Get([]byte("a"))
	_, _ = s.Clean()
	st := s.Stats()
	if st.Sets != 2 || st.Gets != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.Cleaned != 1 {
		t.Fatalf("Cleaned = %d, want 1", st.Cleaned)
	}
	if st.FreeRegions != st.Regions-1 {
		t.Fatalf("FreeRegions = %d of %d, want all but one", st.FreeRegions, st.Regions)
	}
}

func TestQuickSetGetModel(t *testing.T) {
	// Property: the store behaves like a map for any operation sequence.
	s := openTestStore(t, Options{SizeBytes: 8 << 20, RegionSize: 512})
	model := map[string]string{}
	f := func(rawKey []byte, value []byte, del bool) bool {
		if len(rawKey) == 0 {
			rawKey = []byte{0}
		}
		if len(rawKey) > 100 {
			rawKey = rawKey[:100]
		}
		if len(value) > 100 {
			value = value[:100]
		}
		key := string(rawKey)
		if del {
			found, err := s.Delete(rawKey)
			if err != nil {
				return false
			}
			_, inModel := model[key]
			if found != inModel {
				return false
			}
			delete(model, key)
		} else {
			if err := s.Set(rawKey, value); err != nil {
				return false
			}
			model[key] = string(value)
		}
		got, ok, err := s.Get(rawKey)
		if err != nil {
			return false
		}
		want, inModel := model[key]
		if ok != inModel {
			return false
		}
		return !ok || string(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
