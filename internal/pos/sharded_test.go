package pos

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/eactors/eactors-go/internal/faults"
)

func openTestSharded(t *testing.T, opts ShardedOptions) *ShardedStore {
	t.Helper()
	if opts.SizeBytes == 0 {
		opts.SizeBytes = 256 * 1024
	}
	ss, err := OpenSharded(opts)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	t.Cleanup(func() { _ = ss.Close() })
	return ss
}

func TestShardOfStable(t *testing.T) {
	// Routing must be a pure function of the key bytes.
	for _, n := range []int{1, 2, 4, 7, 16} {
		a := ShardOf([]byte("user:42"), n)
		b := ShardOf([]byte("user:42"), n)
		if a != b {
			t.Fatalf("ShardOf unstable for n=%d: %d vs %d", n, a, b)
		}
		if a < 0 || a >= n {
			t.Fatalf("ShardOf out of range for n=%d: %d", n, a)
		}
	}
	// And keys must actually spread across shards.
	seen := make(map[int]bool)
	for i := 0; i < 256; i++ {
		seen[ShardOf([]byte(fmt.Sprintf("key-%d", i)), 4)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("256 keys hit only %d of 4 shards", len(seen))
	}
}

func TestShardedSetGetDelete(t *testing.T) {
	ss := openTestSharded(t, ShardedOptions{Shards: 4})
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if err := ss.Set(k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		got, ok, err := ss.Get(k)
		if err != nil || !ok || string(got) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get(%s) = %q ok=%v err=%v", k, got, ok, err)
		}
	}
	found, err := ss.Delete([]byte("key-7"))
	if err != nil || !found {
		t.Fatalf("Delete = %v, %v", found, err)
	}
	if _, ok, _ := ss.Get([]byte("key-7")); ok {
		t.Fatal("deleted key still found")
	}
	if found, _ := ss.Delete([]byte("never")); found {
		t.Fatal("absent delete reported found")
	}
}

func TestShardedWriteBackIsDeferred(t *testing.T) {
	ss := openTestSharded(t, ShardedOptions{Shards: 2})
	if err := ss.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Before a flush the backing stores know nothing.
	total := uint64(0)
	for i := 0; i < ss.Shards(); i++ {
		total += ss.Shard(i).Stats().Sets
	}
	if total != 0 {
		t.Fatalf("backing stores saw %d sets before flush", total)
	}
	if st := ss.Stats(); st.Dirty != 1 {
		t.Fatalf("Dirty = %d, want 1", st.Dirty)
	}
	if err := ss.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	sh := ss.shardFor([]byte("k"))
	if got, ok, _ := sh.store.Get([]byte("k")); !ok || string(got) != "v" {
		t.Fatalf("backing store after flush = %q ok=%v", got, ok)
	}
	if st := ss.Stats(); st.Dirty != 0 || st.Flushes == 0 || st.FlushedOps != 1 {
		t.Fatalf("Stats after flush = %+v", st)
	}
}

func TestShardedFlushSkipsCleanShards(t *testing.T) {
	ss := openTestSharded(t, ShardedOptions{Shards: 4})
	if err := ss.Set([]byte("only"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := ss.Flush(); err != nil {
		t.Fatal(err)
	}
	flushes := ss.Stats().Flushes
	if flushes != 1 {
		t.Fatalf("Flushes = %d, want 1 (only the dirty shard)", flushes)
	}
	// A second flush with nothing dirty is free.
	if err := ss.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := ss.Stats().Flushes; got != flushes {
		t.Fatalf("clean flush bumped Flushes to %d", got)
	}
}

func TestShardedPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	ss, err := OpenSharded(ShardedOptions{Shards: 4, Dir: dir, SizeBytes: 256 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := ss.Set([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ss.Delete([]byte("k3")); err != nil {
		t.Fatal(err)
	}
	if err := ss.Close(); err != nil { // Close performs the final flush
		t.Fatal(err)
	}

	re, err := OpenSharded(ShardedOptions{Shards: 4, Dir: dir, SizeBytes: 256 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < 64; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		got, ok, err := re.Get(k)
		if i == 3 {
			if ok {
				t.Fatalf("deleted key %s survived reopen", k)
			}
			continue
		}
		if err != nil || !ok || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) after reopen = %q ok=%v err=%v", k, got, ok, err)
		}
	}

	// A different shard count must be rejected, not misroute keys.
	if _, err := OpenSharded(ShardedOptions{Shards: 2, Dir: dir, SizeBytes: 256 * 1024}); !errors.Is(err, ErrBadStore) {
		t.Fatalf("shard-count mismatch err = %v, want ErrBadStore", err)
	}
}

func TestShardedEncryptedMode(t *testing.T) {
	key := testEncKey()
	ss := openTestSharded(t, ShardedOptions{Shards: 2, EncryptionKey: &key})
	if err := ss.Set([]byte("alice"), []byte("online")); err != nil {
		t.Fatal(err)
	}
	if err := ss.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ss.Shards(); i++ {
		if bytes.Contains(ss.Shard(i).mem, []byte("alice")) || bytes.Contains(ss.Shard(i).mem, []byte("online")) {
			t.Fatal("plaintext visible in encrypted shard memory")
		}
	}
	got, ok, err := ss.Get([]byte("alice"))
	if err != nil || !ok || string(got) != "online" {
		t.Fatalf("Get = %q ok=%v err=%v", got, ok, err)
	}
	// Oversized pairs are rejected synchronously, before any flush.
	if err := ss.Set(make([]byte, 64), make([]byte, ss.MaxPair())); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized Set err = %v, want ErrTooLarge", err)
	}
}

func TestShardedSyncFailureKeepsEntriesDirty(t *testing.T) {
	ss := openTestSharded(t, ShardedOptions{Shards: 1})
	// Fail the first Sync, succeed afterwards.
	inj := faults.New(faults.Config{Seed: 1, Rules: []faults.Rule{
		{Site: faults.SitePosSync, Class: faults.SyncFail, Rate: 1},
	}})
	ss.AttachFaults(inj)
	if err := ss.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := ss.Flush(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("Flush under injected sync failure err = %v", err)
	}
	if st := ss.Stats(); st.Dirty != 1 || st.SyncFailures != 1 {
		t.Fatalf("Stats after failed flush = %+v, want entry still dirty", st)
	}
	// Disarm and retry: nothing was lost.
	ss.AttachFaults(nil)
	if err := ss.Flush(); err != nil {
		t.Fatalf("retry Flush: %v", err)
	}
	if got, ok, _ := ss.Shard(0).Get([]byte("k")); !ok || string(got) != "v" {
		t.Fatalf("backing store after retried flush = %q ok=%v", got, ok)
	}
}

func TestShardedBackgroundFlusher(t *testing.T) {
	ss := openTestSharded(t, ShardedOptions{Shards: 2, FlushInterval: 2 * time.Millisecond})
	if err := ss.Set([]byte("bg"), []byte("flushed")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ss.Stats().Dirty != 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never wrote back")
		}
		time.Sleep(time.Millisecond)
	}
	sh := ss.shardFor([]byte("bg"))
	if got, ok, _ := sh.store.Get([]byte("bg")); !ok || string(got) != "flushed" {
		t.Fatalf("backing store = %q ok=%v", got, ok)
	}
}

// TestShardedFlushRacesClose is the -race regression for the write-back
// shutdown path: writers and the background flusher race Close, and
// every operation must either complete before the final flush or return
// ErrClosed — never corrupt state or deadlock.
func TestShardedFlushRacesClose(t *testing.T) {
	for round := 0; round < 8; round++ {
		ss, err := OpenSharded(ShardedOptions{
			Shards: 4, SizeBytes: 256 * 1024, FlushInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				<-start
				for i := 0; ; i++ {
					k := []byte(fmt.Sprintf("w%d-%d", id, i%32))
					if err := ss.Set(k, []byte("x")); errors.Is(err, ErrClosed) {
						return
					}
					if _, _, err := ss.Get(k); errors.Is(err, ErrClosed) {
						return
					}
					if i%7 == 0 {
						if err := ss.Flush(); errors.Is(err, ErrClosed) {
							return
						}
					}
				}
			}(w)
		}
		close(start)
		time.Sleep(2 * time.Millisecond)
		if err := ss.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		wg.Wait()
		if err := ss.Close(); err != nil {
			t.Fatalf("double Close: %v", err)
		}
	}
}

func TestShardedConcurrentAcrossShards(t *testing.T) {
	ss := openTestSharded(t, ShardedOptions{Shards: 8, SizeBytes: 1 << 20})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := []byte(fmt.Sprintf("worker-%d-%d", id, i%16))
				v := []byte(fmt.Sprintf("%d", i))
				if err := ss.Set(k, v); err != nil {
					t.Errorf("Set: %v", err)
					return
				}
				got, ok, err := ss.Get(k)
				if err != nil || !ok || !bytes.Equal(got, v) {
					t.Errorf("Get = %q ok=%v err=%v, want %q", got, ok, err, v)
					return
				}
				if i%50 == 0 {
					if err := ss.Flush(); err != nil {
						t.Errorf("Flush: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestShardedRange(t *testing.T) {
	ss := openTestSharded(t, ShardedOptions{Shards: 4})
	want := map[string]string{}
	for i := 0; i < 32; i++ {
		k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		if err := ss.Set([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	// Half flushed, half still write-back-only; one flushed key deleted
	// and one overwritten in the cache — Range must see the overlay.
	if err := ss.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Delete([]byte("k0")); err != nil {
		t.Fatal(err)
	}
	delete(want, "k0")
	if err := ss.Set([]byte("k1"), []byte("newer")); err != nil {
		t.Fatal(err)
	}
	want["k1"] = "newer"
	if err := ss.Set([]byte("fresh"), []byte("unflushed")); err != nil {
		t.Fatal(err)
	}
	want["fresh"] = "unflushed"

	got := map[string]string{}
	if err := ss.Range(func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Range saw %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%s] = %q, want %q", k, got[k], v)
		}
	}
}

func TestShardedQuickModel(t *testing.T) {
	// Property: sharded store + write-back behaves like a map, with
	// flushes interleaved at arbitrary points.
	ss := openTestSharded(t, ShardedOptions{Shards: 4, SizeBytes: 8 << 20, RegionSize: 512})
	model := map[string]string{}
	step := 0
	f := func(rawKey, value []byte, del bool) bool {
		if len(rawKey) == 0 {
			rawKey = []byte{0}
		}
		if len(rawKey) > 100 {
			rawKey = rawKey[:100]
		}
		if len(value) > 100 {
			value = value[:100]
		}
		key := string(rawKey)
		if del {
			found, err := ss.Delete(rawKey)
			if err != nil {
				return false
			}
			_, inModel := model[key]
			if found != inModel {
				return false
			}
			delete(model, key)
		} else {
			if err := ss.Set(rawKey, value); err != nil {
				return false
			}
			model[key] = string(value)
		}
		step++
		if step%17 == 0 {
			if err := ss.Flush(); err != nil {
				return false
			}
		}
		got, ok, err := ss.Get(rawKey)
		if err != nil {
			return false
		}
		want, inModel := model[key]
		if ok != inModel {
			return false
		}
		return !ok || string(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestShardedClosedErrors(t *testing.T) {
	ss := openTestSharded(t, ShardedOptions{Shards: 2})
	_ = ss.Close()
	if err := ss.Set([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Set after close err = %v", err)
	}
	if _, _, err := ss.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close err = %v", err)
	}
	if _, err := ss.Delete([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after close err = %v", err)
	}
	if err := ss.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after close err = %v", err)
	}
	if err := ss.Range(func(k, v []byte) bool { return true }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Range after close err = %v", err)
	}
}
