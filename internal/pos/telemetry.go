package pos

import (
	"time"

	"github.com/eactors/eactors-go/internal/telemetry"
)

// storeTelemetry bundles the instruments a Store reports through once
// AttachTelemetry has been called. The operation counters stay the
// store's own atomics (the registry reads them at scrape time); only the
// latency histograms are written on the operation paths, behind one
// atomic pointer load that is nil when telemetry is off.
type storeTelemetry struct {
	getNs  *telemetry.Histogram
	setNs  *telemetry.Histogram
	syncNs *telemetry.Histogram
}

// AttachTelemetry exposes the store's counters and occupancy through reg
// and begins observing get/set/sync latency. Call once, before the store
// is shared; scraping FreeRegions walks the free list, so the gauge is
// read-time O(regions).
func (s *Store) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	t := &storeTelemetry{
		getNs:  reg.Histogram("eactors_pos_get_ns", "POS Get latency", "ns"),
		setNs:  reg.Histogram("eactors_pos_set_ns", "POS Set latency", "ns"),
		syncNs: reg.Histogram("eactors_pos_sync_ns", "POS Sync latency", "ns"),
	}
	reg.CounterFunc("eactors_pos_sets", "POS Set operations", s.sets.Load)
	reg.CounterFunc("eactors_pos_gets", "POS Get operations", s.gets.Load)
	reg.CounterFunc("eactors_pos_cleaned", "regions reclaimed by the cleaner", s.cleaned.Load)
	reg.GaugeFunc("eactors_pos_free_regions", "regions on the free list",
		func() uint64 { return uint64(s.FreeRegions()) })
	reg.GaugeFunc("eactors_pos_regions", "total regions in the store",
		func() uint64 { return uint64(s.regionCount) })
	s.tel.Store(t)
}

// AttachTelemetry exposes the sharded store's aggregate counters and
// write-back state through reg. The per-shard Stores are deliberately
// not attached individually (their metric names would collide); the
// aggregate Stats sweep covers them.
func (ss *ShardedStore) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("eactors_pos_cache_hits", "sharded POS write-back cache hits", ss.hits.Load)
	reg.CounterFunc("eactors_pos_cache_misses", "sharded POS write-back cache misses", ss.misses.Load)
	reg.CounterFunc("eactors_pos_flushes", "sharded POS shard write-backs", ss.flushes.Load)
	reg.CounterFunc("eactors_pos_flushed_ops", "dirty entries persisted by write-backs", ss.flushOps.Load)
	reg.CounterFunc("eactors_pos_sync_failures", "failed shard syncs (injected or organic)", ss.syncFails.Load)
	reg.GaugeFunc("eactors_pos_dirty_entries", "dirty write-back entries across shards",
		func() uint64 { return uint64(ss.Stats().Dirty) })
	reg.GaugeFunc("eactors_pos_shards", "POS shard count",
		func() uint64 { return uint64(len(ss.shards)) })
}

// opStart returns the timestamp to measure a store operation against, or
// the zero time when telemetry is off (ObserveSince ignores it).
func (s *Store) opStart() time.Time {
	if s.tel.Load() == nil {
		return time.Time{}
	}
	return time.Now()
}

func (s *Store) observeGet(start time.Time) {
	if t := s.tel.Load(); t != nil {
		t.getNs.ObserveSince(start)
	}
}

func (s *Store) observeSet(start time.Time) {
	if t := s.tel.Load(); t != nil {
		t.setNs.ObserveSince(start)
	}
}

func (s *Store) observeSync(start time.Time) {
	if t := s.tel.Load(); t != nil {
		t.syncNs.ObserveSince(start)
	}
}
