//go:build !linux

package pos

import (
	"fmt"
	"os"
)

// mapFile on platforms without usable mmap falls back to a heap buffer
// loaded from and flushed to the file; Sync and Close write it back.
func mapFile(path string, size int) (mem []byte, closer func() error, syncer func() error, err error) {
	mem = make([]byte, size)
	if existing, readErr := os.ReadFile(path); readErr == nil {
		copy(mem, existing)
	} else if !os.IsNotExist(readErr) {
		return nil, nil, nil, fmt.Errorf("pos: read %s: %w", path, readErr)
	}
	flush := func() error {
		return os.WriteFile(path, mem, 0o644)
	}
	return mem, flush, flush, nil
}
