package pos

import (
	"encoding/binary"
	"errors"
	"sync/atomic"
	"testing"

	"github.com/eactors/eactors-go/internal/ecrypto"
)

// KV-path benchmarks: the store layer of the networked KV service's
// GET/SET pipeline, single Store vs 4-shard ShardedStore, encrypted
// (the service's at-rest configuration). RunParallel models the
// concurrent KVSTORE eactors; the sharded variants win on both axes —
// per-shard locks remove freelist/bucket contention and the write-back
// cache skips the record scan plus the AES-GCM open on hits. The CI
// bench-regression job tracks these against BENCH_BASELINE.json and
// EXPERIMENTS.md records the shard-scaling numbers.

const (
	kvBenchKeys  = 1024
	kvBenchValue = 128
)

func kvBenchEncKey() *[ecrypto.KeySize]byte {
	var key [ecrypto.KeySize]byte
	for i := range key {
		key[i] = byte(i + 1)
	}
	return &key
}

func kvBenchKeyAt(i int) []byte {
	var k [8]byte
	binary.LittleEndian.PutUint64(k[:], uint64(i%kvBenchKeys))
	return k[:]
}

func benchShardedStore(b *testing.B, shards int) *ShardedStore {
	b.Helper()
	ss, err := OpenSharded(ShardedOptions{
		Shards: shards, SizeBytes: 16 << 20, Buckets: 256,
		EncryptionKey: kvBenchEncKey(),
		// The benchmark owns flushing; no background flusher jitter.
		FlushInterval: 0,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = ss.Close() })
	return ss
}

// kvStoreIface is the surface both store flavours share, so the GET and
// SET loops below are identical for the single and sharded variants.
type kvStoreIface interface {
	Get(key []byte) ([]byte, bool, error)
	Set(key, value []byte) error
}

// singleKV adapts a plain Store: on ErrFull it cleans outdated versions
// and retries once, exactly like the KVSTORE's store maintenance.
type singleKV struct{ s *Store }

func (w singleKV) Get(key []byte) ([]byte, bool, error) { return w.s.Get(key) }
func (w singleKV) Set(key, value []byte) error {
	err := w.s.Set(key, value)
	if errors.Is(err, ErrFull) {
		if _, cerr := w.s.Clean(); cerr == nil {
			err = w.s.Set(key, value)
		}
	}
	return err
}

func kvBenchFill(b *testing.B, st kvStoreIface) {
	b.Helper()
	val := make([]byte, kvBenchValue)
	for i := 0; i < kvBenchKeys; i++ {
		if err := st.Set(kvBenchKeyAt(i), val); err != nil {
			b.Fatal(err)
		}
	}
}

func kvBenchGet(b *testing.B, st kvStoreIface) {
	b.Helper()
	kvBenchFill(b, st)
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Stride the key space per goroutine so readers spread across
		// buckets (and shards) the way affinity-routed KVSTOREs do.
		i := int(next.Add(1)) * 7919
		for pb.Next() {
			i++
			if _, ok, err := st.Get(kvBenchKeyAt(i)); err != nil || !ok {
				b.Errorf("Get: ok=%v err=%v", ok, err)
				return
			}
		}
	})
}

func kvBenchSet(b *testing.B, st kvStoreIface) {
	b.Helper()
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		val := make([]byte, kvBenchValue)
		i := int(next.Add(1)) * 7919
		for pb.Next() {
			i++
			if err := st.Set(kvBenchKeyAt(i), val); err != nil {
				b.Errorf("Set: %v", err)
				return
			}
		}
	})
}

func BenchmarkKVGetSingle(b *testing.B) {
	s := benchStore(b, true)
	kvBenchGet(b, singleKV{s})
}

func BenchmarkKVGetSharded4(b *testing.B) {
	ss := benchShardedStore(b, 4)
	kvBenchGet(b, ss)
	b.StopTimer()
	if err := ss.Flush(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkKVSetSingle(b *testing.B) {
	s := benchStore(b, true)
	kvBenchSet(b, singleKV{s})
}

func BenchmarkKVSetSharded4(b *testing.B) {
	ss := benchShardedStore(b, 4)
	kvBenchSet(b, ss)
	// The write-back cache absorbed the burst; one flush per shard
	// persists it (measured outside the timed loop, like the service's
	// background flusher).
	b.StopTimer()
	if err := ss.Flush(); err != nil {
		b.Fatal(err)
	}
}
