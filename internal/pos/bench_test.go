package pos

import (
	"encoding/binary"
	"fmt"
	"testing"

	"github.com/eactors/eactors-go/internal/ecrypto"
)

func benchStore(b *testing.B, encrypted bool) *Store {
	b.Helper()
	opts := Options{SizeBytes: 64 << 20, Buckets: 256}
	if encrypted {
		var key [ecrypto.KeySize]byte
		for i := range key {
			key[i] = byte(i)
		}
		opts.EncryptionKey = &key
	}
	s, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = s.Close() })
	return s
}

func benchKey(i int) []byte {
	var k [8]byte
	binary.LittleEndian.PutUint64(k[:], uint64(i%1024))
	return k[:]
}

func BenchmarkPOSSet(b *testing.B) {
	for _, enc := range []bool{false, true} {
		b.Run(fmt.Sprintf("encrypted=%v", enc), func(b *testing.B) {
			s := benchStore(b, enc)
			val := make([]byte, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Set(benchKey(i), val); err != nil {
					// The store fills with versions; clean and go on.
					b.StopTimer()
					if _, cerr := s.Clean(); cerr != nil {
						b.Fatal(cerr)
					}
					b.StartTimer()
					if err := s.Set(benchKey(i), val); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkPOSGet(b *testing.B) {
	for _, enc := range []bool{false, true} {
		b.Run(fmt.Sprintf("encrypted=%v", enc), func(b *testing.B) {
			s := benchStore(b, enc)
			val := make([]byte, 64)
			for i := 0; i < 1024; i++ {
				if err := s.Set(benchKey(i), val); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok, err := s.Get(benchKey(i)); err != nil || !ok {
					b.Fatalf("Get: ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// BenchmarkPOSVersionScan shows the read cost of version chains before
// the Cleaner runs (the paper's fast-write/slower-read trade-off).
func BenchmarkPOSVersionScan(b *testing.B) {
	for _, versions := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("versions=%d", versions), func(b *testing.B) {
			s := benchStore(b, false)
			key := []byte("hot-key")
			for v := 0; v < versions; v++ {
				if err := s.Set(key, []byte{byte(v)}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok, err := s.Get(key); err != nil || !ok {
					b.Fatal("get failed")
				}
			}
		})
	}
}

func BenchmarkPOSClean(b *testing.B) {
	s := benchStore(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for v := 0; v < 64; v++ {
			if err := s.Set([]byte("k"), []byte{byte(v)}); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := s.Clean(); err != nil {
			b.Fatal(err)
		}
	}
}
