package pos

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/eactors/eactors-go/internal/faults"
)

// Property-based crash-recovery tests: random operation sequences run
// against a model, the fault injector cuts Sync mid-schedule
// (faults.SitePosSync), the process "crashes" (the store is abandoned
// without Close, so write-back state in memory is lost), and the
// reopened store must be prefix-consistent — per key, the recovered
// state is some point in the key's history no older than the last
// successful sync.

// histEntry is one version in a key's write history.
type histEntry struct {
	val string
	del bool
}

// recoveryModel tracks per-key histories and the last-synced barrier.
type recoveryModel struct {
	history map[string][]histEntry
	// syncedIdx is each key's history index at the last successful
	// sync; absent means the key was never covered by one.
	syncedIdx map[string]int
}

func newRecoveryModel() *recoveryModel {
	return &recoveryModel{history: make(map[string][]histEntry), syncedIdx: make(map[string]int)}
}

func (m *recoveryModel) set(key, val string) {
	m.history[key] = append(m.history[key], histEntry{val: val})
}
func (m *recoveryModel) del(key string) {
	m.history[key] = append(m.history[key], histEntry{del: true})
}
func (m *recoveryModel) syncedBarrier() {
	for k, h := range m.history {
		m.syncedIdx[k] = len(h) - 1
	}
}

// check verifies one key's recovered state against the allowed suffix
// of its history.
func (m *recoveryModel) check(key string, gotVal []byte, found bool) error {
	h := m.history[key]
	from, synced := m.syncedIdx[key]
	if len(h) == 0 {
		if found {
			return fmt.Errorf("key %q never written but recovered %q", key, gotVal)
		}
		return nil
	}
	if !synced {
		// Never covered by a successful sync: anything from "absent" to
		// the newest version is a valid crash outcome.
		if !found {
			return nil
		}
		from = 0
	}
	for i := from; i < len(h); i++ {
		if h[i].del {
			if !found {
				return nil
			}
			continue
		}
		if found && string(gotVal) == h[i].val {
			return nil
		}
	}
	if !found {
		return fmt.Errorf("key %q lost: synced version %+v not recovered", key, h[from])
	}
	return fmt.Errorf("key %q recovered %q, not in allowed history suffix %+v", key, gotVal, h[from:])
}

// recoveryRules arms the injector that cuts syncs mid-schedule.
func recoveryRules(seed uint64) *faults.Injector {
	return faults.New(faults.Config{Seed: seed, Rules: []faults.Rule{
		{Site: faults.SitePosSync, Class: faults.SyncFail, Rate: 0.4},
	}})
}

const recoverySchedules = 220

func TestCrashRecoveryPropertyStore(t *testing.T) {
	for seed := int64(0); seed < recoverySchedules; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "store.pos")
			s, err := Open(Options{Path: path, SizeBytes: 512 * 1024})
			if err != nil {
				t.Fatal(err)
			}
			s.AttachFaults(recoveryRules(uint64(seed)))
			model := newRecoveryModel()
			rng := rand.New(rand.NewSource(seed))
			runRecoverySchedule(t, rng, model,
				func(k, v string) error { return s.Set([]byte(k), []byte(v)) },
				func(k string) error { _, err := s.Delete([]byte(k)); return err },
				s.Sync)

			// Crash: abandon s without Close and reopen the file.
			re, err := Open(Options{Path: path, SizeBytes: 512 * 1024})
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			verifyRecovery(t, model, func(k string) ([]byte, bool, error) { return re.Get([]byte(k)) })
			_ = re.Close()
			s.AttachFaults(nil)
			_ = s.Close()
		})
	}
}

func TestCrashRecoveryPropertySharded(t *testing.T) {
	for seed := int64(0); seed < recoverySchedules; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			open := func() (*ShardedStore, error) {
				return OpenSharded(ShardedOptions{
					Shards: 4, Dir: dir, SizeBytes: 256 * 1024,
					// No background flusher: the schedule owns every
					// flush, so the crash point is deterministic.
					FlushInterval: 0,
				})
			}
			ss, err := open()
			if err != nil {
				t.Fatal(err)
			}
			ss.AttachFaults(recoveryRules(uint64(seed)))
			model := newRecoveryModel()
			rng := rand.New(rand.NewSource(seed))
			runRecoverySchedule(t, rng, model,
				func(k, v string) error { return ss.Set([]byte(k), []byte(v)) },
				func(k string) error { _, err := ss.Delete([]byte(k)); return err },
				ss.Flush)

			// Crash: the write-back cache dies with the process; only the
			// backing shard files survive.
			re, err := open()
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			verifyRecovery(t, model, func(k string) ([]byte, bool, error) { return re.Get([]byte(k)) })
			_ = re.Close()
			ss.AttachFaults(nil)
			_ = ss.Close()
		})
	}
}

// runRecoverySchedule applies one randomized op schedule: sets, deletes
// and sync attempts whose failures are injected deterministically.
func runRecoverySchedule(t *testing.T, rng *rand.Rand, model *recoveryModel,
	set func(k, v string) error, del func(k string) error, sync func() error) {
	t.Helper()
	version := 0
	ops := 40 + rng.Intn(60)
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("key-%d", rng.Intn(12))
		switch r := rng.Float64(); {
		case r < 0.60:
			version++
			val := fmt.Sprintf("%s#%d", key, version)
			if err := set(key, val); err != nil {
				t.Fatalf("Set(%s): %v", key, err)
			}
			model.set(key, val)
		case r < 0.80:
			if err := del(key); err != nil {
				t.Fatalf("Delete(%s): %v", key, err)
			}
			model.del(key)
		default:
			if err := sync(); err == nil {
				model.syncedBarrier()
			}
			// Injected failure: no barrier; entries must survive to the
			// next attempt (or be allowed as lost at crash).
		}
	}
	// One final sync attempt so most schedules end with a durable tail.
	if err := sync(); err == nil {
		model.syncedBarrier()
	}
}

// verifyRecovery checks every key ever touched against the model.
func verifyRecovery(t *testing.T, model *recoveryModel, get func(k string) ([]byte, bool, error)) {
	t.Helper()
	for k := range model.history {
		val, found, err := get(k)
		if err != nil {
			t.Fatalf("Get(%s) after recovery: %v", k, err)
		}
		if err := model.check(k, val, found); err != nil {
			t.Fatal(err)
		}
	}
}
