// Package pos implements the EActors Persistent Object Store (Section 4
// of the paper): a lean key-value store over a memory-mapped file,
// organised as a configurable number of bucket stacks. Writes push new
// versions on top of the bucket stack; reads scan top-down and therefore
// always observe the newest version first, making the store linearisable
// without read locks in the paper's design (Figure 5). Outdated versions
// accumulate and are reclaimed by a Cleaner once every registered reader
// has passed the superseding update (grace counters).
//
// Differences from the paper, by necessity of the Go environment: the
// store uses file-relative offsets instead of pointers (Go cannot map at
// a fixed virtual address), and bucket-striped in-process locks instead
// of Hardware Lock Elision. Persistence semantics (page-cache-backed
// mmap, explicit Sync) are the same.
package pos

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/faults"
)

// Store geometry and layout constants.
const (
	magic         = 0xEAC7_0B5E_EAC7_0B5E
	version       = 1
	headerPages   = 2 // superblock + sealed-key slot
	pageSize      = 4096
	minRegionSize = 64

	// Superblock field offsets.
	offMagic       = 0
	offVersion     = 8
	offSize        = 12
	offBuckets     = 20
	offRegionSize  = 24
	offRegionCount = 28
	offFreeHead    = 32
	offBucketHeads = 40 // bucket head table starts here, 8 bytes each

	// Sealed-key slot (second page).
	offSealedLen  = pageSize
	offSealedBlob = pageSize + 4

	// Record header layout within a region.
	recNext   = 0  // u64 offset of next record in bucket chain (0 = nil)
	recFlags  = 8  // u32
	recEpoch  = 12 // u64 global epoch at Set time
	recKeyLen = 20 // u32
	recValLen = 24 // u32
	recData   = 32 // key bytes then value bytes

	flagOutdated = 1 << 0 // superseded by a newer version
	flagDeleted  = 1 << 1 // tombstoned by Delete
)

// Store errors.
var (
	ErrFull        = errors.New("pos: store full (no free regions)")
	ErrTooLarge    = errors.New("pos: key+value exceeds region size")
	ErrBadStore    = errors.New("pos: invalid or incompatible store file")
	ErrClosed      = errors.New("pos: store closed")
	ErrNoSealedKey = errors.New("pos: no sealed key stored")

	// ErrInjectedSync reports a Sync failed by the fault injector (see
	// AttachFaults); the store contents are untouched, exactly like a
	// transient msync error.
	ErrInjectedSync = errors.New("pos: injected sync failure")
)

// Options configures Open.
type Options struct {
	// Path is the backing file. Empty means a volatile in-memory store.
	Path string
	// SizeBytes is the total store size; rounded up to whole pages.
	SizeBytes int
	// Buckets is the number of bucket stacks (default 64).
	Buckets int
	// RegionSize is the fixed record region size in bytes (default 256).
	// One key-value pair must fit in RegionSize-recData bytes.
	RegionSize int
	// EncryptionKey, when non-nil, enables encrypted mode: keys are
	// deterministically encrypted (so lookup compares ciphertexts) and
	// each pair is stored as one combined sealed value (Section 4.1).
	EncryptionKey *[ecrypto.KeySize]byte
}

// Store is a persistent object store. All methods are safe for
// concurrent use.
type Store struct {
	mem    []byte
	closer func() error
	syncer func() error

	buckets     int
	regionSize  int
	regionCount int
	regionsOff  int

	freeMu    sync.Mutex
	bucketMu  []sync.Mutex
	epoch     atomic.Uint64
	readersMu sync.Mutex
	readers   []*Reader

	det  *ecrypto.Deterministic // nil in plaintext mode
	pair *ecrypto.Cipher

	closed atomic.Bool

	sets    atomic.Uint64
	gets    atomic.Uint64
	cleaned atomic.Uint64

	// tel is nil until AttachTelemetry (see telemetry.go).
	tel atomic.Pointer[storeTelemetry]

	// flt is nil until AttachFaults; Sync consults it for injected
	// failures and delays.
	flt atomic.Pointer[faults.Injector]
}

// AttachFaults arms the store with a deterministic fault injector: each
// Sync consults the SitePosSync schedule and fails with ErrInjectedSync
// or stalls when the schedule says so. Nil-safe and O(1) when off.
func (s *Store) AttachFaults(inj *faults.Injector) {
	s.flt.Store(inj)
}

func addrOf(b []byte) uintptr {
	if len(b) == 0 {
		return 0
	}
	return uintptr(unsafe.Pointer(&b[0]))
}

// Open creates or re-opens a store.
func Open(opts Options) (*Store, error) {
	if opts.SizeBytes < headerPages*pageSize+minRegionSize {
		return nil, fmt.Errorf("pos: size %d too small", opts.SizeBytes)
	}
	if opts.Buckets == 0 {
		opts.Buckets = 64
	}
	if opts.Buckets < 1 {
		return nil, fmt.Errorf("pos: bucket count %d", opts.Buckets)
	}
	if opts.RegionSize == 0 {
		opts.RegionSize = 256
	}
	if opts.RegionSize < minRegionSize {
		return nil, fmt.Errorf("pos: region size %d below minimum %d", opts.RegionSize, minRegionSize)
	}
	size := (opts.SizeBytes + pageSize - 1) / pageSize * pageSize

	var (
		mem    []byte
		closer = func() error { return nil }
		syncer = func() error { return nil }
		err    error
	)
	if opts.Path != "" {
		mem, closer, syncer, err = mapFile(opts.Path, size)
		if err != nil {
			return nil, err
		}
	} else {
		mem = make([]byte, size)
	}

	s := &Store{mem: mem, closer: closer, syncer: syncer}
	if opts.EncryptionKey != nil {
		det, err := ecrypto.NewDeterministic(*opts.EncryptionKey)
		if err != nil {
			_ = closer()
			return nil, err
		}
		pair, err := ecrypto.NewCipher(ecrypto.DeriveKey(*opts.EncryptionKey, "pos-pair"), 2)
		if err != nil {
			_ = closer()
			return nil, err
		}
		s.det = det
		s.pair = pair
	}

	if binary.LittleEndian.Uint64(mem[offMagic:]) == magic {
		if err := s.loadSuperblock(opts); err != nil {
			_ = closer()
			return nil, err
		}
	} else {
		if err := s.formatSuperblock(opts, size); err != nil {
			_ = closer()
			return nil, err
		}
	}
	s.bucketMu = make([]sync.Mutex, s.buckets)
	return s, nil
}

func (s *Store) formatSuperblock(opts Options, size int) error {
	headTable := offBucketHeads + 8*opts.Buckets
	if headTable > offSealedLen {
		return fmt.Errorf("pos: %d buckets do not fit the superblock page", opts.Buckets)
	}
	regionsOff := headerPages * pageSize
	regionCount := (size - regionsOff) / opts.RegionSize
	if regionCount < 1 {
		return fmt.Errorf("pos: size %d leaves no room for regions", size)
	}

	mem := s.mem
	binary.LittleEndian.PutUint64(mem[offMagic:], magic)
	binary.LittleEndian.PutUint32(mem[offVersion:], version)
	binary.LittleEndian.PutUint64(mem[offSize:], uint64(size))
	binary.LittleEndian.PutUint32(mem[offBuckets:], uint32(opts.Buckets))
	binary.LittleEndian.PutUint32(mem[offRegionSize:], uint32(opts.RegionSize))
	binary.LittleEndian.PutUint32(mem[offRegionCount:], uint32(regionCount))
	for b := 0; b < opts.Buckets; b++ {
		binary.LittleEndian.PutUint64(mem[offBucketHeads+8*b:], 0)
	}

	// Build the free list: every region chained through its first word.
	var prev uint64
	for i := regionCount - 1; i >= 0; i-- {
		off := uint64(regionsOff + i*opts.RegionSize)
		binary.LittleEndian.PutUint64(mem[off:], prev)
		prev = off
	}
	binary.LittleEndian.PutUint64(mem[offFreeHead:], prev)

	s.buckets = opts.Buckets
	s.regionSize = opts.RegionSize
	s.regionCount = regionCount
	s.regionsOff = regionsOff
	return nil
}

func (s *Store) loadSuperblock(opts Options) error {
	mem := s.mem
	if binary.LittleEndian.Uint32(mem[offVersion:]) != version {
		return fmt.Errorf("%w: version mismatch", ErrBadStore)
	}
	storedSize := binary.LittleEndian.Uint64(mem[offSize:])
	if storedSize != uint64(len(mem)) {
		return fmt.Errorf("%w: stored size %d vs mapped %d", ErrBadStore, storedSize, len(mem))
	}
	s.buckets = int(binary.LittleEndian.Uint32(mem[offBuckets:]))
	s.regionSize = int(binary.LittleEndian.Uint32(mem[offRegionSize:]))
	s.regionCount = int(binary.LittleEndian.Uint32(mem[offRegionCount:]))
	s.regionsOff = headerPages * pageSize
	if s.buckets < 1 || s.regionSize < minRegionSize || s.regionCount < 1 {
		return fmt.Errorf("%w: corrupt geometry", ErrBadStore)
	}
	if opts.Buckets != 0 && opts.Buckets != s.buckets {
		return fmt.Errorf("%w: bucket count %d differs from stored %d", ErrBadStore, opts.Buckets, s.buckets)
	}
	return nil
}

// MaxPair returns the largest key+value the store accepts. In encrypted
// mode the ciphertext expansion is already accounted for.
func (s *Store) MaxPair() int {
	capacity := s.regionSize - recData
	if s.det != nil {
		capacity -= 2 * ecrypto.Overhead
	}
	return capacity
}

// storedPairSize returns the region bytes a pair occupies after
// encoding — without paying for the encryption itself, so the write-back
// layer can validate sizes eagerly. Mirrors encode: in encrypted mode
// the key is sealed deterministically and the value stored as the
// sealed (keyLen32 || key || value) combination.
func (s *Store) storedPairSize(keyLen, valLen int) int {
	if s.det == nil {
		return recData + keyLen + valLen
	}
	return recData + (keyLen + ecrypto.Overhead) + (4 + keyLen + valLen + ecrypto.Overhead)
}

// Buckets returns the configured bucket count.
func (s *Store) Buckets() int { return s.buckets }

// Regions returns the total region count.
func (s *Store) Regions() int { return s.regionCount }

func (s *Store) bucketOf(key []byte) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(s.buckets))
}

// allocRegion pops a region from the free list, or 0 when full.
func (s *Store) allocRegion() uint64 {
	s.freeMu.Lock()
	defer s.freeMu.Unlock()
	head := binary.LittleEndian.Uint64(s.mem[offFreeHead:])
	if head == 0 {
		return 0
	}
	next := binary.LittleEndian.Uint64(s.mem[head:])
	binary.LittleEndian.PutUint64(s.mem[offFreeHead:], next)
	return head
}

func (s *Store) freeRegion(off uint64) {
	s.freeMu.Lock()
	defer s.freeMu.Unlock()
	head := binary.LittleEndian.Uint64(s.mem[offFreeHead:])
	binary.LittleEndian.PutUint64(s.mem[off:], head)
	binary.LittleEndian.PutUint64(s.mem[offFreeHead:], off)
}

// FreeRegions counts the regions on the free list (O(n), for tests and
// stats).
func (s *Store) FreeRegions() int {
	s.freeMu.Lock()
	defer s.freeMu.Unlock()
	count := 0
	for off := binary.LittleEndian.Uint64(s.mem[offFreeHead:]); off != 0; {
		count++
		off = binary.LittleEndian.Uint64(s.mem[off:])
	}
	return count
}

// encode transforms a pair for storage: identity in plaintext mode; in
// encrypted mode the key becomes its deterministic ciphertext and the
// value the sealed combination of key and value.
func (s *Store) encode(key, value []byte) (storedKey, storedValue []byte, err error) {
	if s.det == nil {
		return key, value, nil
	}
	storedKey = s.det.Seal(key)
	combined := make([]byte, 0, 4+len(key)+len(value))
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(key)))
	combined = append(combined, lenBuf[:]...)
	combined = append(combined, key...)
	combined = append(combined, value...)
	storedValue = s.pair.Seal(nil, combined, storedKey)
	return storedKey, storedValue, nil
}

// decodeValue recovers the plaintext value from a stored pair, verifying
// the embedded key in encrypted mode.
func (s *Store) decodeValue(storedKey, storedValue, wantKey []byte) ([]byte, error) {
	if s.det == nil {
		out := make([]byte, len(storedValue))
		copy(out, storedValue)
		return out, nil
	}
	combined, err := s.pair.Open(nil, storedValue, storedKey)
	if err != nil {
		return nil, err
	}
	if len(combined) < 4 {
		return nil, ErrBadStore
	}
	keyLen := int(binary.LittleEndian.Uint32(combined))
	if keyLen < 0 || 4+keyLen > len(combined) {
		return nil, ErrBadStore
	}
	if string(combined[4:4+keyLen]) != string(wantKey) {
		return nil, fmt.Errorf("%w: embedded key mismatch", ErrBadStore)
	}
	return combined[4+keyLen:], nil
}

// lookupKey returns the byte string used for hashing and comparison.
func (s *Store) lookupKey(key []byte) []byte {
	if s.det == nil {
		return key
	}
	return s.det.Seal(key)
}

// Set stores a new version of key. Older versions stay in the bucket
// (marked outdated) until the Cleaner reclaims them.
func (s *Store) Set(key, value []byte) error {
	if s.closed.Load() {
		return ErrClosed
	}
	defer s.observeSet(s.opStart())
	storedKey, storedValue, err := s.encode(key, value)
	if err != nil {
		return err
	}
	if recData+len(storedKey)+len(storedValue) > s.regionSize {
		return fmt.Errorf("%w: %d+%d bytes into %d-byte region",
			ErrTooLarge, len(storedKey), len(storedValue), s.regionSize)
	}
	region := s.allocRegion()
	if region == 0 {
		return ErrFull
	}
	epoch := s.epoch.Add(1)

	mem := s.mem
	rec := mem[region : region+uint64(s.regionSize)]
	binary.LittleEndian.PutUint32(rec[recFlags:], 0)
	binary.LittleEndian.PutUint64(rec[recEpoch:], epoch)
	binary.LittleEndian.PutUint32(rec[recKeyLen:], uint32(len(storedKey)))
	binary.LittleEndian.PutUint32(rec[recValLen:], uint32(len(storedValue)))
	copy(rec[recData:], storedKey)
	copy(rec[recData+len(storedKey):], storedValue)

	b := s.bucketOf(storedKey)
	s.bucketMu[b].Lock()
	headOff := offBucketHeads + 8*b
	head := binary.LittleEndian.Uint64(mem[headOff:])
	binary.LittleEndian.PutUint64(rec[recNext:], head)
	binary.LittleEndian.PutUint64(mem[headOff:], region)
	// Mark older versions outdated right away (Section 4.1: "the marking
	// of outdated values is performed immediately after updates").
	for off := head; off != 0 && s.validRecordOff(off); {
		r := mem[off : off+uint64(s.regionSize)]
		if s.recordKeyEquals(r, storedKey) {
			flags := binary.LittleEndian.Uint32(r[recFlags:])
			if flags&(flagOutdated|flagDeleted) == 0 {
				binary.LittleEndian.PutUint32(r[recFlags:], flags|flagOutdated)
			}
		}
		off = binary.LittleEndian.Uint64(r[recNext:])
	}
	s.bucketMu[b].Unlock()
	s.sets.Add(1)
	return nil
}

func (s *Store) recordKeyEquals(rec, key []byte) bool {
	keyLen, _, ok := s.recordSpans(rec)
	if !ok || keyLen != len(key) {
		return false
	}
	return string(rec[recData:recData+keyLen]) == string(key)
}

// validRecordOff reports whether off points at a record region inside
// the store, aligned to the region grid. Chain walks check every link
// before dereferencing it: the mmap is the trust boundary, and a
// corrupted next pointer must end the chain, not crash the process.
func (s *Store) validRecordOff(off uint64) bool {
	if off < uint64(s.regionsOff) || off+uint64(s.regionSize) > uint64(len(s.mem)) {
		return false
	}
	return (off-uint64(s.regionsOff))%uint64(s.regionSize) == 0
}

// recordSpans reads a record's key/value lengths and checks they fit
// inside the region; corrupted length fields return ok=false.
func (s *Store) recordSpans(rec []byte) (keyLen, valLen int, ok bool) {
	keyLen = int(binary.LittleEndian.Uint32(rec[recKeyLen:]))
	valLen = int(binary.LittleEndian.Uint32(rec[recValLen:]))
	if keyLen < 0 || valLen < 0 || keyLen > len(rec) || valLen > len(rec) ||
		recData+keyLen+valLen > len(rec) {
		return 0, 0, false
	}
	return keyLen, valLen, true
}

// Get returns the newest value stored for key.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	if s.closed.Load() {
		return nil, false, ErrClosed
	}
	defer s.observeGet(s.opStart())
	s.gets.Add(1)
	storedKey := s.lookupKey(key)
	b := s.bucketOf(storedKey)
	mem := s.mem
	s.bucketMu[b].Lock()
	defer s.bucketMu[b].Unlock()
	for off := binary.LittleEndian.Uint64(mem[offBucketHeads+8*b:]); off != 0 && s.validRecordOff(off); {
		rec := mem[off : off+uint64(s.regionSize)]
		if s.recordKeyEquals(rec, storedKey) {
			flags := binary.LittleEndian.Uint32(rec[recFlags:])
			if flags&flagDeleted != 0 {
				// Newest version is a tombstone: key absent.
				return nil, false, nil
			}
			keyLen, valLen, ok := s.recordSpans(rec)
			if !ok {
				return nil, false, ErrBadStore
			}
			stored := rec[recData+keyLen : recData+keyLen+valLen]
			val, err := s.decodeValue(storedKey, stored, key)
			if err != nil {
				return nil, false, err
			}
			return val, true, nil
		}
		off = binary.LittleEndian.Uint64(rec[recNext:])
	}
	return nil, false, nil
}

// Delete tombstones key. It reports whether a live version existed.
func (s *Store) Delete(key []byte) (bool, error) {
	if s.closed.Load() {
		return false, ErrClosed
	}
	storedKey := s.lookupKey(key)
	b := s.bucketOf(storedKey)
	mem := s.mem
	s.bucketMu[b].Lock()
	defer s.bucketMu[b].Unlock()
	found := false
	for off := binary.LittleEndian.Uint64(mem[offBucketHeads+8*b:]); off != 0 && s.validRecordOff(off); {
		rec := mem[off : off+uint64(s.regionSize)]
		if s.recordKeyEquals(rec, storedKey) {
			flags := binary.LittleEndian.Uint32(rec[recFlags:])
			if flags&(flagOutdated|flagDeleted) == 0 {
				found = true
			}
			binary.LittleEndian.PutUint32(rec[recFlags:], flags|flagDeleted|flagOutdated)
			// Stamp the deletion epoch so the cleaner honours grace.
			binary.LittleEndian.PutUint64(rec[recEpoch:], s.epoch.Add(1))
		}
		off = binary.LittleEndian.Uint64(rec[recNext:])
	}
	return found, nil
}

// Sync flushes the store to its backing file (msync on Linux).
func (s *Store) Sync() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if inj := s.flt.Load(); inj != nil {
		switch act := inj.At(faults.SitePosSync); act.Class {
		case faults.SyncFail:
			return ErrInjectedSync
		case faults.Delay:
			time.Sleep(act.Delay)
		}
	}
	defer s.observeSync(s.opStart())
	return s.syncer()
}

// Close flushes and releases the store.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	return s.closer()
}

// StoreSealedKey writes a sealed key blob into the dedicated slot
// (Section 4.1: encryption keys survive reboots as sealed data inside
// the POS).
func (s *Store) StoreSealedKey(blob []byte) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if len(blob) > pageSize-4 {
		return fmt.Errorf("pos: sealed blob %d bytes exceeds slot", len(blob))
	}
	binary.LittleEndian.PutUint32(s.mem[offSealedLen:], uint32(len(blob)))
	copy(s.mem[offSealedBlob:], blob)
	return nil
}

// LoadSealedKey reads back the sealed key blob.
func (s *Store) LoadSealedKey() ([]byte, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	n := int(binary.LittleEndian.Uint32(s.mem[offSealedLen:]))
	if n == 0 {
		return nil, ErrNoSealedKey
	}
	if n > pageSize-4 {
		return nil, ErrBadStore
	}
	out := make([]byte, n)
	copy(out, s.mem[offSealedBlob:offSealedBlob+n])
	return out, nil
}

// Range calls fn for the newest live version of every key, in no
// particular order, until fn returns false. In encrypted mode keys and
// values are decrypted for the callback. Mutations during iteration are
// allowed (bucket locks are taken one at a time).
func (s *Store) Range(fn func(key, value []byte) bool) error {
	if s.closed.Load() {
		return ErrClosed
	}
	mem := s.mem
	for b := 0; b < s.buckets; b++ {
		s.bucketMu[b].Lock()
		seen := make(map[string]bool)
		type pair struct{ key, value []byte }
		var out []pair
		for off := binary.LittleEndian.Uint64(mem[offBucketHeads+8*b:]); off != 0 && s.validRecordOff(off); {
			rec := mem[off : off+uint64(s.regionSize)]
			keyLen, valLen, ok := s.recordSpans(rec)
			if !ok {
				break // corrupted record: the rest of this chain is lost
			}
			storedKey := rec[recData : recData+keyLen]
			flags := binary.LittleEndian.Uint32(rec[recFlags:])
			if !seen[string(storedKey)] {
				seen[string(storedKey)] = true
				if flags&flagDeleted == 0 {
					k := append([]byte(nil), storedKey...)
					v := append([]byte(nil), rec[recData+keyLen:recData+keyLen+valLen]...)
					out = append(out, pair{k, v})
				}
			}
			off = binary.LittleEndian.Uint64(rec[recNext:])
		}
		s.bucketMu[b].Unlock()

		for _, p := range out {
			key, value := p.key, p.value
			if s.det != nil {
				combined, err := s.pair.Open(nil, value, key)
				if err != nil {
					continue // not decryptable under this store key
				}
				if len(combined) < 4 {
					continue
				}
				kl := int(binary.LittleEndian.Uint32(combined))
				if kl < 0 || 4+kl > len(combined) {
					continue
				}
				key = combined[4 : 4+kl]
				value = combined[4+kl:]
			}
			if !fn(key, value) {
				return nil
			}
		}
	}
	return nil
}

// Stats summarises store occupancy.
type Stats struct {
	Sets, Gets, Cleaned uint64
	Regions             int
	FreeRegions         int
}

// Stats returns operation counters and occupancy.
func (s *Store) Stats() Stats {
	return Stats{
		Sets:        s.sets.Load(),
		Gets:        s.gets.Load(),
		Cleaned:     s.cleaned.Load(),
		Regions:     s.regionCount,
		FreeRegions: s.FreeRegions(),
	}
}
