// Sharded, cached POS: the scaling layer over the paper's single
// Persistent Object Store. A ShardedStore routes every key to one of N
// independent Store shards by a stable hash, so concurrent eactors
// touching different shards never contend on one freelist or one bucket
// table, and each shard persists to its own backing file.
//
// On top of the shards sits a write-back cache: Set and Delete land in
// an in-enclave map first (dirty tracking per shard), and a batched
// Flush applies the newest version of every dirty key to the backing
// Store and issues one Sync per shard — so the fsync cost of a burst of
// writes amortises to one stable-storage round-trip per shard instead
// of one per operation. Cached reads also skip the store's record scan
// and (in encrypted mode) the AES-GCM open, which is what makes the
// sharded GET path scale with cores.
//
// Crash-consistency contract (DESIGN.md §10): a flush snapshots the
// shard under its lock, so the persisted image of a shard is always the
// shard's state at some single point in the operation sequence —
// per-shard prefix consistency. Dirty entries are only marked clean
// after the shard's Sync succeeded; a failed Sync (including one cut by
// the fault injector) keeps them dirty, and the next Flush re-applies
// them. Cross-shard ordering is not preserved: two shards may persist
// prefixes of different lengths.
package pos

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/faults"
)

// DefaultShards is the shard count when ShardedOptions.Shards is zero.
const DefaultShards = 4

// defaultCacheEntries bounds the clean entries cached per shard; dirty
// entries are always tracked regardless of the cap (they are the
// write-back buffer, not a cache).
const defaultCacheEntries = 4096

// ShardedOptions configures OpenSharded.
type ShardedOptions struct {
	// Shards is the number of independent Store shards (DefaultShards
	// when zero).
	Shards int
	// Dir is the directory holding one backing file per shard
	// (shard-0.pos, shard-1.pos, ...). Empty means volatile in-memory
	// shards.
	Dir string
	// SizeBytes is the per-shard store size.
	SizeBytes int
	// Buckets and RegionSize configure each shard's Store geometry.
	Buckets    int
	RegionSize int
	// EncryptionKey enables encrypted mode on every shard (one key; each
	// shard derives its own pair cipher exactly like a single Store).
	EncryptionKey *[ecrypto.KeySize]byte
	// FlushInterval, when positive, starts a background flusher that
	// periodically writes back dirty shards. Zero leaves flushing to
	// explicit Sync/Flush calls (e.g. one per drained request burst).
	FlushInterval time.Duration
	// CacheEntries caps the clean cached entries per shard
	// (defaultCacheEntries when zero; negative disables clean caching).
	CacheEntries int
}

// cacheEntry is one write-back cache slot. val is nil only for
// tombstones (del set).
type cacheEntry struct {
	val   []byte
	dirty bool
	del   bool
}

// shard is one Store plus its write-back cache.
type shard struct {
	store *Store
	mu    sync.RWMutex
	cache map[string]*cacheEntry
	dirty int // number of dirty entries (tracked under mu)
	clean int // number of clean (pure cache) entries
}

// ShardedStore is a sharded, cached Persistent Object Store. All
// methods are safe for concurrent use.
type ShardedStore struct {
	shards    []*shard
	cacheCap  int
	closed    atomic.Bool
	stopFlush chan struct{}
	flushWG   sync.WaitGroup
	flushMu   sync.Mutex // serialises whole-store Flush/Sync/Close

	hits      atomic.Uint64
	misses    atomic.Uint64
	flushes   atomic.Uint64
	flushOps  atomic.Uint64
	syncFails atomic.Uint64
}

// ShardOf returns the stable shard index for key: the same key maps to
// the same shard across restarts and across processes, which is what
// lets a frontend route requests by key affinity before any store (or
// encryption key) is in sight. FNV-1a over the raw key bytes.
func ShardOf(key []byte, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return int(h % uint32(shards))
}

// OpenSharded creates or re-opens a sharded store. Re-opening a
// directory that was formatted with a different shard count is rejected
// (keys would silently route to the wrong shard).
func OpenSharded(opts ShardedOptions) (*ShardedStore, error) {
	if opts.Shards == 0 {
		opts.Shards = DefaultShards
	}
	if opts.Shards < 1 {
		return nil, fmt.Errorf("pos: shard count %d", opts.Shards)
	}
	if opts.SizeBytes == 0 {
		opts.SizeBytes = 4 << 20
	}
	cacheCap := opts.CacheEntries
	if cacheCap == 0 {
		cacheCap = defaultCacheEntries
	}
	if cacheCap < 0 {
		cacheCap = 0
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, err
		}
		existing, err := filepath.Glob(filepath.Join(opts.Dir, "shard-*.pos"))
		if err != nil {
			return nil, err
		}
		if len(existing) != 0 && len(existing) != opts.Shards {
			return nil, fmt.Errorf("%w: directory holds %d shard files, want %d",
				ErrBadStore, len(existing), opts.Shards)
		}
	}
	ss := &ShardedStore{
		shards:    make([]*shard, opts.Shards),
		cacheCap:  cacheCap,
		stopFlush: make(chan struct{}),
	}
	for i := range ss.shards {
		path := ""
		if opts.Dir != "" {
			path = filepath.Join(opts.Dir, fmt.Sprintf("shard-%d.pos", i))
		}
		st, err := Open(Options{
			Path:          path,
			SizeBytes:     opts.SizeBytes,
			Buckets:       opts.Buckets,
			RegionSize:    opts.RegionSize,
			EncryptionKey: opts.EncryptionKey,
		})
		if err != nil {
			for _, prev := range ss.shards[:i] {
				_ = prev.store.Close()
			}
			return nil, fmt.Errorf("pos: shard %d: %w", i, err)
		}
		ss.shards[i] = &shard{store: st, cache: make(map[string]*cacheEntry)}
	}
	if opts.FlushInterval > 0 {
		ss.flushWG.Add(1)
		go ss.flushLoop(opts.FlushInterval)
	}
	return ss, nil
}

// flushLoop is the background write-back flusher.
func (ss *ShardedStore) flushLoop(every time.Duration) {
	defer ss.flushWG.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ss.stopFlush:
			return
		case <-ticker.C:
			_ = ss.Flush() // errors surface on the next explicit Sync
		}
	}
}

// Shards returns the shard count.
func (ss *ShardedStore) Shards() int { return len(ss.shards) }

// Shard exposes shard i's underlying Store (telemetry, tests, cleaner
// deployment).
func (ss *ShardedStore) Shard(i int) *Store { return ss.shards[i].store }

// MaxPair returns the largest key+value the shards accept.
func (ss *ShardedStore) MaxPair() int { return ss.shards[0].store.MaxPair() }

// shardFor routes a key.
func (ss *ShardedStore) shardFor(key []byte) *shard {
	return ss.shards[ShardOf(key, len(ss.shards))]
}

// Get returns the newest value stored for key, from the write-back
// cache when present, else from the shard's Store (populating the cache
// as a clean entry up to the cache cap).
func (ss *ShardedStore) Get(key []byte) ([]byte, bool, error) {
	if ss.closed.Load() {
		return nil, false, ErrClosed
	}
	sh := ss.shardFor(key)
	sh.mu.RLock()
	if e, ok := sh.cache[string(key)]; ok {
		if e.del {
			sh.mu.RUnlock()
			ss.hits.Add(1)
			return nil, false, nil
		}
		out := append([]byte(nil), e.val...)
		sh.mu.RUnlock()
		ss.hits.Add(1)
		return out, true, nil
	}
	sh.mu.RUnlock()
	ss.misses.Add(1)
	val, ok, err := sh.store.Get(key)
	if err != nil || !ok {
		return nil, false, err
	}
	if ss.cacheCap > 0 {
		sh.mu.Lock()
		if _, exists := sh.cache[string(key)]; !exists && sh.clean < ss.cacheCap {
			sh.cache[string(key)] = &cacheEntry{val: append([]byte(nil), val...)}
			sh.clean++
		}
		sh.mu.Unlock()
	}
	return val, true, nil
}

// Set stores a new version of key in the write-back cache; the backing
// Store sees it at the next flush. Size violations fail synchronously
// (the write-back layer never accepts a pair the store would reject),
// but ErrFull can only surface at flush/Sync time — see the contract in
// the package comment.
func (ss *ShardedStore) Set(key, value []byte) error {
	if ss.closed.Load() {
		return ErrClosed
	}
	sh := ss.shardFor(key)
	if need := sh.store.storedPairSize(len(key), len(value)); need > sh.store.regionSize {
		return fmt.Errorf("%w: %d bytes into %d-byte region",
			ErrTooLarge, need, sh.store.regionSize)
	}
	sh.mu.Lock()
	e, ok := sh.cache[string(key)]
	if !ok {
		e = &cacheEntry{}
		sh.cache[string(key)] = e
	} else if !e.dirty {
		sh.clean--
	}
	if !e.dirty {
		sh.dirty++
	}
	e.val = append(e.val[:0], value...)
	e.dirty = true
	e.del = false
	sh.mu.Unlock()
	return nil
}

// Delete tombstones key in the write-back cache. It reports whether a
// live version existed (in the cache or the backing store).
func (ss *ShardedStore) Delete(key []byte) (bool, error) {
	if ss.closed.Load() {
		return false, ErrClosed
	}
	sh := ss.shardFor(key)
	sh.mu.Lock()
	e, cached := sh.cache[string(key)]
	found := cached && !e.del
	sh.mu.Unlock()
	if !cached {
		var err error
		if _, found, err = sh.store.Get(key); err != nil {
			return false, err
		}
	}
	sh.mu.Lock()
	e, cached = sh.cache[string(key)]
	if !cached {
		e = &cacheEntry{}
		sh.cache[string(key)] = e
	} else if !e.dirty {
		sh.clean--
	}
	if !e.dirty {
		sh.dirty++
	}
	e.val = nil
	e.dirty = true
	e.del = true
	sh.mu.Unlock()
	return found, nil
}

// flushShard writes back one shard: snapshot the dirty entries under
// the lock, apply them to the Store, one Sync, then mark them clean —
// unless the Sync failed, in which case every entry stays dirty for the
// next attempt.
func (ss *ShardedStore) flushShard(sh *shard) error {
	type pending struct {
		key string
		e   *cacheEntry
		val []byte
		del bool
	}
	sh.mu.RLock()
	if sh.dirty == 0 {
		sh.mu.RUnlock()
		return nil
	}
	batch := make([]pending, 0, sh.dirty)
	for k, e := range sh.cache {
		if e.dirty {
			batch = append(batch, pending{key: k, e: e, val: append([]byte(nil), e.val...), del: e.del})
		}
	}
	sh.mu.RUnlock()

	for _, p := range batch {
		var err error
		if p.del {
			_, err = sh.store.Delete([]byte(p.key))
		} else {
			err = sh.store.Set([]byte(p.key), p.val)
			if errors.Is(err, ErrFull) {
				// Rewriting hot keys leaves outdated records behind;
				// reclaim them and retry once before giving up.
				if _, cerr := sh.store.Clean(); cerr == nil {
					err = sh.store.Set([]byte(p.key), p.val)
				}
			}
		}
		if err != nil {
			return err
		}
	}
	if err := sh.store.Sync(); err != nil {
		ss.syncFails.Add(1)
		return err
	}
	// Housekeeping rides on the flush: each write-back of a cached key
	// outdates its previous record, so reclaim them while we are here
	// instead of leaving the region budget to drain.
	if _, err := sh.store.Clean(); err != nil {
		return err
	}
	// Durable: mark the flushed entries clean — unless a concurrent
	// writer re-dirtied one (its newer value was not in this snapshot).
	cleaned := 0
	sh.mu.Lock()
	for _, p := range batch {
		e := sh.cache[p.key]
		if e != p.e || !e.dirty {
			continue
		}
		if e.del != p.del || (!e.del && string(e.val) != string(p.val)) {
			continue // re-dirtied since the snapshot
		}
		e.dirty = false
		sh.dirty--
		cleaned++
		if e.del || sh.clean >= ss.cacheCap {
			delete(sh.cache, p.key) // tombstones and overflow leave the cache
		} else {
			sh.clean++
		}
	}
	sh.mu.Unlock()
	ss.flushes.Add(1)
	ss.flushOps.Add(uint64(cleaned))
	return nil
}

// Flush writes back every dirty shard (shards with no dirty entries are
// skipped entirely — the batching win). The first error is returned,
// but every shard is attempted.
func (ss *ShardedStore) Flush() error {
	if ss.closed.Load() {
		return ErrClosed
	}
	ss.flushMu.Lock()
	defer ss.flushMu.Unlock()
	var firstErr error
	for _, sh := range ss.shards {
		if err := ss.flushShard(sh); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Sync is Flush: the write-back layer's durability point. Named to
// mirror Store.Sync so the two store types are interchangeable to
// callers.
func (ss *ShardedStore) Sync() error { return ss.Flush() }

// Close stops the background flusher, performs a final write-back and
// closes every shard. Concurrent Sets racing Close either land before
// the final flush or return ErrClosed.
func (ss *ShardedStore) Close() error {
	if !ss.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(ss.stopFlush)
	ss.flushWG.Wait()
	ss.flushMu.Lock()
	defer ss.flushMu.Unlock()
	var firstErr error
	for _, sh := range ss.shards {
		if err := ss.flushShard(sh); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := sh.store.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// AttachFaults arms every shard's Store with the injector (SitePosSync
// schedules then govern each shard's Sync independently).
func (ss *ShardedStore) AttachFaults(inj *faults.Injector) {
	for _, sh := range ss.shards {
		sh.store.AttachFaults(inj)
	}
}

// ShardedStats aggregates the sharded store's counters.
type ShardedStats struct {
	// Shards is the shard count.
	Shards int
	// Hits / Misses are write-back cache read outcomes.
	Hits, Misses uint64
	// Flushes counts shard write-backs; FlushedOps the dirty entries
	// they persisted; SyncFailures the Syncs that failed (injected or
	// organic).
	Flushes, FlushedOps, SyncFailures uint64
	// Dirty is the current number of dirty entries across shards.
	Dirty int
	// Store aggregates the underlying shard stores.
	Store Stats
}

// Stats returns a snapshot of the sharded store's counters.
func (ss *ShardedStore) Stats() ShardedStats {
	out := ShardedStats{
		Shards:       len(ss.shards),
		Hits:         ss.hits.Load(),
		Misses:       ss.misses.Load(),
		Flushes:      ss.flushes.Load(),
		FlushedOps:   ss.flushOps.Load(),
		SyncFailures: ss.syncFails.Load(),
	}
	for _, sh := range ss.shards {
		sh.mu.RLock()
		out.Dirty += sh.dirty
		sh.mu.RUnlock()
		st := sh.store.Stats()
		out.Store.Sets += st.Sets
		out.Store.Gets += st.Gets
		out.Store.Cleaned += st.Cleaned
		out.Store.Regions += st.Regions
		out.Store.FreeRegions += st.FreeRegions
	}
	return out
}

// Range calls fn for the newest live version of every key across all
// shards, write-back entries taking precedence over persisted ones.
func (ss *ShardedStore) Range(fn func(key, value []byte) bool) error {
	if ss.closed.Load() {
		return ErrClosed
	}
	for _, sh := range ss.shards {
		sh.mu.RLock()
		overlay := make(map[string]*cacheEntry, len(sh.cache))
		for k, e := range sh.cache {
			if e.dirty {
				overlay[k] = &cacheEntry{val: append([]byte(nil), e.val...), del: e.del}
			}
		}
		sh.mu.RUnlock()
		stop := false
		err := sh.store.Range(func(key, value []byte) bool {
			if e, ok := overlay[string(key)]; ok {
				delete(overlay, string(key))
				if e.del {
					return true
				}
				value = e.val
			}
			if !fn(key, value) {
				stop = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
		for k, e := range overlay {
			if e.del {
				continue
			}
			if !fn([]byte(k), e.val) {
				return nil
			}
		}
	}
	return nil
}
