package pos

import (
	"encoding/binary"
	"sync/atomic"

	"github.com/eactors/eactors-go/internal/core"
)

// Reader is a grace counter for one consumer of the store. The paper's
// Cleaner may only reclaim an outdated record once every eactor connected
// to the POS has executed at least once since the update that outdated it
// (Section 4.1); readers publish that progress by calling Tick.
type Reader struct {
	store *Store
	seen  atomic.Uint64
}

// Tick publishes that the reader has observed the current store epoch;
// eactor bodies call it once per invocation.
func (r *Reader) Tick() {
	r.seen.Store(r.store.epoch.Load())
}

// Seen returns the last epoch the reader published.
func (r *Reader) Seen() uint64 { return r.seen.Load() }

// RegisterReader adds a grace counter that constrains the Cleaner.
func (s *Store) RegisterReader() *Reader {
	r := &Reader{store: s}
	s.readersMu.Lock()
	s.readers = append(s.readers, r)
	s.readersMu.Unlock()
	return r
}

// UnregisterReader removes a previously registered reader.
func (s *Store) UnregisterReader(r *Reader) {
	s.readersMu.Lock()
	defer s.readersMu.Unlock()
	for i, x := range s.readers {
		if x == r {
			s.readers = append(s.readers[:i], s.readers[i+1:]...)
			return
		}
	}
}

// graceEpoch returns the highest epoch all readers have passed. With no
// readers registered every outdated record is immediately reclaimable.
func (s *Store) graceEpoch() uint64 {
	s.readersMu.Lock()
	defer s.readersMu.Unlock()
	if len(s.readers) == 0 {
		return s.epoch.Load()
	}
	min := s.readers[0].seen.Load()
	for _, r := range s.readers[1:] {
		if seen := r.seen.Load(); seen < min {
			min = seen
		}
	}
	return min
}

// Clean performs one housekeeping pass over all buckets, unlinking and
// reclaiming records that are outdated or tombstoned and whose epoch has
// been passed by every registered reader. It returns the number of
// regions reclaimed.
func (s *Store) Clean() (int, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	grace := s.graceEpoch()
	mem := s.mem
	reclaimed := 0
	for b := 0; b < s.buckets; b++ {
		s.bucketMu[b].Lock()
		headOff := offBucketHeads + 8*b
		prev := uint64(0)
		off := binary.LittleEndian.Uint64(mem[headOff:])
		for off != 0 && s.validRecordOff(off) {
			rec := mem[off : off+uint64(s.regionSize)]
			next := binary.LittleEndian.Uint64(rec[recNext:])
			flags := binary.LittleEndian.Uint32(rec[recFlags:])
			epoch := binary.LittleEndian.Uint64(rec[recEpoch:])
			if flags&(flagOutdated|flagDeleted) != 0 && epoch <= grace {
				if prev == 0 {
					binary.LittleEndian.PutUint64(mem[headOff:], next)
				} else {
					binary.LittleEndian.PutUint64(mem[prev+recNext:], next)
				}
				s.freeRegion(off)
				reclaimed++
			} else {
				prev = off
			}
			off = next
		}
		s.bucketMu[b].Unlock()
	}
	s.cleaned.Add(uint64(reclaimed))
	return reclaimed, nil
}

// CleanerActor returns an eactor Spec that runs Clean periodically —
// the paper's housekeeping Cleaner eactor. every counts body invocations
// between passes (the actor model has no timers).
func (s *Store) CleanerActor(name string, worker int, every int) core.Spec {
	if every < 1 {
		every = 1
	}
	countdown := every
	return core.Spec{
		Name:   name,
		Worker: worker,
		Body: func(self *core.Self) {
			countdown--
			if countdown > 0 {
				return
			}
			countdown = every
			if n, err := s.Clean(); err == nil && n > 0 {
				self.Progress()
			}
		},
	}
}
