package pos

import (
	"errors"
	"sort"
	"testing"
)

func collectRange(t *testing.T, s *Store) map[string]string {
	t.Helper()
	out := map[string]string{}
	if err := s.Range(func(k, v []byte) bool {
		out[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatalf("Range: %v", err)
	}
	return out
}

func TestRangeBasics(t *testing.T) {
	s := openTestStore(t, Options{})
	want := map[string]string{"a": "1", "b": "2", "c": "3"}
	for k, v := range want {
		if err := s.Set([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	got := collectRange(t, s)
	if len(got) != len(want) {
		t.Fatalf("Range saw %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%s] = %q, want %q", k, got[k], v)
		}
	}
}

func TestRangeSeesNewestVersionOnly(t *testing.T) {
	s := openTestStore(t, Options{})
	_ = s.Set([]byte("k"), []byte("old"))
	_ = s.Set([]byte("k"), []byte("new"))
	got := collectRange(t, s)
	if len(got) != 1 || got["k"] != "new" {
		t.Fatalf("Range = %v", got)
	}
}

func TestRangeSkipsDeleted(t *testing.T) {
	s := openTestStore(t, Options{})
	_ = s.Set([]byte("gone"), []byte("x"))
	_ = s.Set([]byte("kept"), []byte("y"))
	if _, err := s.Delete([]byte("gone")); err != nil {
		t.Fatal(err)
	}
	got := collectRange(t, s)
	if _, ok := got["gone"]; ok {
		t.Fatal("Range returned a deleted key")
	}
	if got["kept"] != "y" {
		t.Fatalf("Range = %v", got)
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := openTestStore(t, Options{})
	for _, k := range []string{"a", "b", "c", "d"} {
		_ = s.Set([]byte(k), []byte("v"))
	}
	count := 0
	_ = s.Range(func(k, v []byte) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d keys", count)
	}
}

func TestRangeEncrypted(t *testing.T) {
	key := testEncKey()
	s := openTestStore(t, Options{EncryptionKey: &key})
	_ = s.Set([]byte("alice"), []byte("online"))
	_ = s.Set([]byte("bob"), []byte("away"))
	got := collectRange(t, s)
	var keys []string
	for k := range got {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) != 2 || keys[0] != "alice" || keys[1] != "bob" {
		t.Fatalf("encrypted Range keys = %v", keys)
	}
	if got["alice"] != "online" || got["bob"] != "away" {
		t.Fatalf("encrypted Range = %v", got)
	}
}

func TestRangeClosed(t *testing.T) {
	s := openTestStore(t, Options{})
	_ = s.Close()
	if err := s.Range(func(k, v []byte) bool { return true }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Range after close err = %v", err)
	}
}
