package netactors

import "sync"

// readyQueue is the binding point between the readiness loop's
// dispatchers and one READER eactor: dispatchers push sockets whose
// inbox gained work (dedup'd by Socket.queued), the READER pops and
// drains exactly those — never scanning its full watch set. Each entry
// appears at most once, so the queue is bounded by the watch count.
type readyQueue struct {
	mu   sync.Mutex
	q    []*Socket
	head int
}

func newReadyQueue() *readyQueue { return &readyQueue{} }

func (rq *readyQueue) push(s *Socket) {
	rq.mu.Lock()
	rq.q = append(rq.q, s)
	rq.mu.Unlock()
}

func (rq *readyQueue) pop() *Socket {
	rq.mu.Lock()
	defer rq.mu.Unlock()
	if rq.head == len(rq.q) {
		rq.q = rq.q[:0]
		rq.head = 0
		return nil
	}
	s := rq.q[rq.head]
	rq.q[rq.head] = nil
	rq.head++
	if rq.head == len(rq.q) {
		rq.q = rq.q[:0]
		rq.head = 0
	}
	return s
}

// remove deletes s if queued (unwatch during handoff), reporting
// whether it was present.
func (rq *readyQueue) remove(s *Socket) bool {
	rq.mu.Lock()
	defer rq.mu.Unlock()
	for i := rq.head; i < len(rq.q); i++ {
		if rq.q[i] == s {
			rq.q = append(rq.q[:i], rq.q[i+1:]...)
			return true
		}
	}
	return false
}

func (rq *readyQueue) len() int {
	rq.mu.Lock()
	defer rq.mu.Unlock()
	return len(rq.q) - rq.head
}
