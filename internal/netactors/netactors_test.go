package netactors

import (
	"bytes"
	"net"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/sgx"
)

func TestMsgRoundTrip(t *testing.T) {
	m := Msg{Type: MsgData, Sock: 42, Data: []byte("payload")}
	buf, err := m.AppendTo(nil)
	if err != nil {
		t.Fatalf("AppendTo: %v", err)
	}
	got, err := ParseMsg(buf)
	if err != nil {
		t.Fatalf("ParseMsg: %v", err)
	}
	if got.Type != m.Type || got.Sock != m.Sock || !bytes.Equal(got.Data, m.Data) {
		t.Fatalf("roundtrip = %+v, want %+v", got, m)
	}
}

func TestMsgErrors(t *testing.T) {
	if _, err := ParseMsg([]byte{1, 2}); err != ErrShortMsg {
		t.Fatalf("short parse err = %v", err)
	}
	// Declared length longer than buffer.
	m := Msg{Type: MsgData, Sock: 1, Data: []byte("abcdef")}
	buf, _ := m.AppendTo(nil)
	if _, err := ParseMsg(buf[:len(buf)-2]); err != ErrShortMsg {
		t.Fatalf("truncated parse err = %v", err)
	}
	// Oversized data rejected at encode time.
	if _, err := (Msg{Data: make([]byte, 70000)}).AppendTo(nil); err == nil {
		t.Fatal("64KiB+ frame accepted")
	}
}

func TestMsgQuick(t *testing.T) {
	f := func(typeByte uint8, sock uint32, data []byte) bool {
		if len(data) > 0xFFFF {
			data = data[:0xFFFF]
		}
		m := Msg{Type: MsgType(typeByte), Sock: sock, Data: data}
		buf, err := m.AppendTo(nil)
		if err != nil {
			return false
		}
		got, err := ParseMsg(buf)
		return err == nil && got.Type == m.Type && got.Sock == m.Sock && bytes.Equal(got.Data, m.Data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableLifecycle(t *testing.T) {
	table := NewTable()
	c1, c2 := net.Pipe()
	defer c2.Close()
	s := table.AddConn(c1)
	if s.ID() == 0 {
		t.Fatal("socket id 0 assigned")
	}
	got, ok := table.Get(s.ID())
	if !ok || got != s {
		t.Fatal("Get did not return the socket")
	}
	if table.Len() != 1 {
		t.Fatalf("Len = %d", table.Len())
	}
	if err := table.Close(s.ID()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, ok := table.Get(s.ID()); ok {
		t.Fatal("closed socket still registered")
	}
	if err := table.Close(999); err == nil {
		t.Fatal("closing unknown socket succeeded")
	}
}

func TestTableWriteUnknown(t *testing.T) {
	table := NewTable()
	if err := table.Write(7, []byte("x")); err == nil {
		t.Fatal("write to unknown socket succeeded")
	}
}

func TestMaxData(t *testing.T) {
	if MaxData(2048) != 2048-msgHeader {
		t.Fatalf("MaxData = %d", MaxData(2048))
	}
}

// TestEchoPipeline drives the full system-actor pipeline: an enclaved
// echo service listens via OPENER/ACCEPTER, reads via READER, writes via
// WRITER, and an external TCP client checks the echo.
func TestEchoPipeline(t *testing.T) {
	sys := NewSystem()
	defer sys.Shutdown()

	addrCh := make(chan string, 1)
	var finished atomic.Bool

	// State machine of the echo application eactor.
	const (
		stOpen = iota
		stWatchListener
		stServe
	)
	type echoState struct {
		phase    int
		listener uint32
		scratch  []byte
	}

	echo := core.Spec{
		Name:    "echo",
		Enclave: "service",
		Worker:  0,
		State:   &echoState{},
		Body: func(self *core.Self) {
			st := self.State.(*echoState)
			opener := self.MustChannel("open")
			accept := self.MustChannel("accept")
			read := self.MustChannel("read")
			write := self.MustChannel("write")
			buf := make([]byte, 2048)

			switch st.phase {
			case stOpen:
				m, _ := (Msg{Type: MsgListen, Data: []byte("127.0.0.1:0")}).AppendTo(nil)
				if opener.Send(m) == nil {
					st.phase = stWatchListener
					self.Progress()
				}
			case stWatchListener:
				n, ok, err := opener.Recv(buf)
				if err != nil || !ok {
					return
				}
				msg, err := ParseMsg(buf[:n])
				if err != nil || msg.Type != MsgOpenOK {
					t.Errorf("listen failed: %+v err=%v", msg, err)
					self.StopRuntime()
					return
				}
				st.listener = msg.Sock
				addrCh <- string(msg.Data)
				w, _ := (Msg{Type: MsgWatch, Sock: msg.Sock}).AppendTo(nil)
				if accept.Send(w) == nil {
					st.phase = stServe
					self.Progress()
				}
			case stServe:
				// Watch newly accepted connections with the READER.
				if n, ok, _ := accept.Recv(buf); ok {
					if msg, err := ParseMsg(buf[:n]); err == nil && msg.Type == MsgAccepted {
						w, _ := (Msg{Type: MsgWatch, Sock: msg.Sock}).AppendTo(st.scratch[:0])
						st.scratch = w
						_ = read.Send(w) //sendcheck:ok
						self.Progress()
					}
				}
				// Echo data back through the WRITER.
				if n, ok, _ := read.Recv(buf); ok {
					if msg, err := ParseMsg(buf[:n]); err == nil && msg.Type == MsgData {
						out, _ := (Msg{Type: MsgData, Sock: msg.Sock, Data: msg.Data}).AppendTo(nil)
						_ = write.Send(out) //sendcheck:ok
						self.Progress()
					}
				}
			}
		},
	}

	cfg := core.Config{
		Enclaves: []core.EnclaveSpec{{Name: "service"}},
		Workers:  []core.WorkerSpec{{}, {}},
		Actors: []core.Spec{
			echo,
			sys.OpenerSpec("opener", 1, "open"),
			sys.AccepterSpec("accepter", 1, "accept"),
			sys.ReaderSpec("reader", 1, "read"),
			sys.WriterSpec("writer", 1, "write"),
			sys.CloserSpec("closer", 1, "close"),
		},
		Channels: []core.ChannelSpec{
			{Name: "open", A: "echo", B: "opener"},
			{Name: "accept", A: "echo", B: "accepter"},
			{Name: "read", A: "echo", B: "reader"},
			{Name: "write", A: "echo", B: "writer"},
			{Name: "close", A: "echo", B: "closer"},
		},
	}
	rt, err := core.NewRuntime(sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel())), cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer rt.Stop()

	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(5 * time.Second):
		t.Fatal("no listen address from the pipeline")
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	for round := 0; round < 5; round++ {
		msg := []byte("ping through the enclave pipeline")
		if _, err := conn.Write(msg); err != nil {
			t.Fatalf("client write: %v", err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		got := make([]byte, len(msg))
		n := 0
		for n < len(msg) {
			k, err := conn.Read(got[n:])
			if err != nil {
				t.Fatalf("client read: %v", err)
			}
			n += k
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("echo round %d = %q", round, got)
		}
	}
	finished.Store(true)
}

// TestReaderReportsEOF checks the MsgClosed notification path.
func TestReaderReportsEOF(t *testing.T) {
	sys := NewSystem()
	defer sys.Shutdown()

	client, server := net.Pipe()
	sock := sys.Table().AddConn(server)

	gotClosed := make(chan struct{}, 1)
	app := core.Spec{
		Name:   "app",
		Worker: 0,
		Body: func(self *core.Self) {
			read := self.MustChannel("read")
			buf := make([]byte, 2048)
			n, ok, _ := read.Recv(buf)
			if !ok {
				return
			}
			if msg, err := ParseMsg(buf[:n]); err == nil && msg.Type == MsgClosed && msg.Sock == sock.ID() {
				select {
				case gotClosed <- struct{}{}:
				default:
				}
			}
			self.Progress()
		},
		Init: func(self *core.Self) error {
			w, _ := (Msg{Type: MsgWatch, Sock: sock.ID()}).AppendTo(nil)
			return self.MustChannel("read").Send(w)
		},
	}

	cfg := core.Config{
		Workers: []core.WorkerSpec{{}},
		Actors: []core.Spec{
			app,
			sys.ReaderSpec("reader", 0, "read"),
		},
		Channels: []core.ChannelSpec{{Name: "read", A: "app", B: "reader"}},
	}
	rt, err := core.NewRuntime(sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel())), cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer rt.Stop()

	_ = client.Close() // EOF on the watched socket

	select {
	case <-gotClosed:
	case <-time.After(5 * time.Second):
		t.Fatal("MsgClosed never delivered")
	}
}
