package netactors

import (
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/sgx"
)

// TestLatencyProbe measures the echo pipeline's round-trip latency and
// prints a breakdown; it guards against regressions of the netpoll
// starvation issue (busy workers delaying socket readiness).
func TestLatencyProbe(t *testing.T) {
	sys := NewSystem()
	defer sys.Shutdown()

	addrCh := make(chan string, 1)
	type echoState struct {
		phase   int
		scratch []byte
	}
	st := &echoState{}
	echo := core.Spec{
		Name: "echo", Worker: 0, State: st,
		Body: func(self *core.Self) {
			state := self.State.(*echoState)
			opener := self.MustChannel("open")
			accept := self.MustChannel("accept")
			read := self.MustChannel("read")
			write := self.MustChannel("write")
			buf := make([]byte, 2048)
			switch state.phase {
			case 0:
				m, _ := (Msg{Type: MsgListen, Data: []byte("127.0.0.1:0")}).AppendTo(nil)
				if opener.Send(m) == nil {
					state.phase = 1
					self.Progress()
				}
			case 1:
				n, ok, _ := opener.Recv(buf)
				if !ok {
					return
				}
				msg, _ := ParseMsg(buf[:n])
				addrCh <- string(msg.Data)
				w, _ := (Msg{Type: MsgWatch, Sock: msg.Sock}).AppendTo(nil)
				if accept.Send(w) == nil {
					state.phase = 2
					self.Progress()
				}
			case 2:
				if n, ok, _ := accept.Recv(buf); ok {
					if msg, err := ParseMsg(buf[:n]); err == nil && msg.Type == MsgAccepted {
						w, _ := (Msg{Type: MsgWatch, Sock: msg.Sock}).AppendTo(state.scratch[:0])
						state.scratch = w
						_ = read.Send(w) //sendcheck:ok
						self.Progress()
					}
				}
				if n, ok, _ := read.Recv(buf); ok {
					if msg, err := ParseMsg(buf[:n]); err == nil && msg.Type == MsgData {
						out, _ := (Msg{Type: MsgData, Sock: msg.Sock, Data: msg.Data}).AppendTo(nil)
						_ = write.Send(out) //sendcheck:ok
						self.Progress()
					}
				}
			}
		},
	}
	cfg := core.Config{
		Workers: []core.WorkerSpec{{}, {}},
		Actors: []core.Spec{
			echo,
			sys.OpenerSpec("opener", 1, "open"),
			sys.AccepterSpec("accepter", 1, "accept"),
			sys.ReaderSpec("reader", 1, "read"),
			sys.WriterSpec("writer", 1, "write"),
		},
		Channels: []core.ChannelSpec{
			{Name: "open", A: "echo", B: "opener"},
			{Name: "accept", A: "echo", B: "accepter"},
			{Name: "read", A: "echo", B: "reader"},
			{Name: "write", A: "echo", B: "writer"},
		},
	}
	rt, err := core.NewRuntime(sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel())), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	addr := <-addrCh
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	msg := make([]byte, 150)
	reply := make([]byte, 150)
	// Warmup.
	for i := 0; i < 20; i++ {
		if _, err := conn.Write(msg); err != nil {
			t.Fatal(err)
		}
		if _, err := readFull(conn, reply); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 300
	var total time.Duration
	var worst time.Duration
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := conn.Write(msg); err != nil {
			t.Fatal(err)
		}
		if _, err := readFull(conn, reply); err != nil {
			t.Fatal(err)
		}
		d := time.Since(start)
		total += d
		if d > worst {
			worst = d
		}
	}
	avg := total / rounds
	fmt.Printf("latency probe: avg=%v worst=%v over %d round trips\n", avg, worst, rounds)
	if avg > 2*time.Millisecond {
		t.Errorf("echo pipeline round-trip latency %v exceeds 2ms budget", avg)
	}
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	n := 0
	for n < len(buf) {
		k, err := conn.Read(buf[n:])
		if err != nil {
			return n, err
		}
		n += k
	}
	return n, nil
}
