package netactors

import (
	"bytes"
	"net"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/sgx"
)

// startNetRuntime builds a runtime with one idle app actor wired to all
// five system eactors, and returns the app's endpoints for test-side
// protocol driving.
func startNetRuntime(t *testing.T, sys *System) map[string]*core.Endpoint {
	t.Helper()
	cfg := core.Config{
		Workers: []core.WorkerSpec{{}},
		Actors: []core.Spec{
			{Name: "app", Worker: 0, Body: func(*core.Self) {}},
			sys.OpenerSpec("opener", 0, "open"),
			sys.AccepterSpec("accepter", 0, "accept"),
			sys.ReaderSpec("reader", 0, "read"),
			sys.WriterSpec("writer", 0, "write"),
			sys.CloserSpec("closer", 0, "close"),
		},
		Channels: []core.ChannelSpec{
			{Name: "open", A: "app", B: "opener"},
			{Name: "accept", A: "app", B: "accepter"},
			{Name: "read", A: "app", B: "reader"},
			{Name: "write", A: "app", B: "writer"},
			{Name: "close", A: "app", B: "closer"},
		},
	}
	rt, err := core.NewRuntime(sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel())), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)
	eps := map[string]*core.Endpoint{}
	for _, name := range []string{"open", "accept", "read", "write", "close"} {
		ep, err := rt.EndpointForTest("app", name)
		if err != nil {
			t.Fatal(err)
		}
		eps[name] = ep
	}
	return eps
}

// netCall sends a request and waits for one response on the endpoint.
func netCall(t *testing.T, ep *core.Endpoint, req Msg) Msg {
	t.Helper()
	buf, err := req.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for ep.Send(buf) != nil {
		if time.Now().After(deadline) {
			t.Fatal("send timed out")
		}
	}
	return netWait(t, ep)
}

// netWait waits for one message on the endpoint.
func netWait(t *testing.T, ep *core.Endpoint) Msg {
	t.Helper()
	recv := make([]byte, 4096)
	deadline := time.Now().Add(10 * time.Second)
	for {
		n, ok, err := ep.Recv(recv)
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if ok {
			msg, err := ParseMsg(recv[:n])
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			return msg
		}
		if time.Now().After(deadline) {
			t.Fatal("recv timed out")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOpenerDial exercises the client-socket path: OPENER dials an
// external server, READER watches the connection, WRITER sends,
// CLOSER closes.
func TestOpenerDial(t *testing.T) {
	// External echo server.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1024)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			if _, err := conn.Write(buf[:n]); err != nil {
				return
			}
		}
	}()

	sys := NewSystem()
	defer sys.Shutdown()
	eps := startNetRuntime(t, sys)

	// Dial.
	resp := netCall(t, eps["open"], Msg{Type: MsgDial, Data: []byte(lis.Addr().String())})
	if resp.Type != MsgOpenOK {
		t.Fatalf("dial response = %+v", resp)
	}
	sock := resp.Sock

	// Watch with the READER, then send through the WRITER.
	w, _ := (Msg{Type: MsgWatch, Sock: sock}).AppendTo(nil)
	if err := eps["read"].Send(w); err != nil {
		t.Fatal(err)
	}
	out, _ := (Msg{Type: MsgData, Sock: sock, Data: []byte("echo me")}).AppendTo(nil)
	if err := eps["write"].Send(out); err != nil {
		t.Fatal(err)
	}
	echo := netWait(t, eps["read"])
	if echo.Type != MsgData || !bytes.Equal(echo.Data, []byte("echo me")) {
		t.Fatalf("echo = %+v", echo)
	}

	// Close via the CLOSER; the table empties.
	c, _ := (Msg{Type: MsgClose, Sock: sock}).AppendTo(nil)
	if err := eps["close"].Send(c); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sys.Table().Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("table still holds %d sockets", sys.Table().Len())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOpenerDialFailure covers the MsgOpenErr path.
func TestOpenerDialFailure(t *testing.T) {
	sys := NewSystem()
	defer sys.Shutdown()
	eps := startNetRuntime(t, sys)
	// Dial a port that refuses connections.
	resp := netCall(t, eps["open"], Msg{Type: MsgDial, Data: []byte("127.0.0.1:1")})
	if resp.Type != MsgOpenErr || len(resp.Data) == 0 {
		t.Fatalf("dial-failure response = %+v", resp)
	}
}

// TestListenFailure covers MsgOpenErr on a bad listen address.
func TestListenFailure(t *testing.T) {
	sys := NewSystem()
	defer sys.Shutdown()
	eps := startNetRuntime(t, sys)
	resp := netCall(t, eps["open"], Msg{Type: MsgListen, Data: []byte("256.0.0.1:0")})
	if resp.Type != MsgOpenErr {
		t.Fatalf("listen-failure response = %+v", resp)
	}
}

// TestUnwatchHandoff moves a watched socket from one READER to another,
// the mechanism the XMPP CONNECTOR uses to hand connections to shards.
func TestUnwatchHandoff(t *testing.T) {
	sys := NewSystem()
	defer sys.Shutdown()

	cfg := core.Config{
		Workers: []core.WorkerSpec{{}},
		Actors: []core.Spec{
			{Name: "app", Worker: 0, Body: func(*core.Self) {}},
			sys.ReaderSpec("reader1", 0, "read1"),
			sys.ReaderSpec("reader2", 0, "read2"),
		},
		Channels: []core.ChannelSpec{
			{Name: "read1", A: "app", B: "reader1"},
			{Name: "read2", A: "app", B: "reader2"},
		},
	}
	rt, err := core.NewRuntime(sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel())), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	read1, _ := rt.EndpointForTest("app", "read1")
	read2, _ := rt.EndpointForTest("app", "read2")

	client, server := net.Pipe()
	defer client.Close()
	sock := sys.Table().AddConn(server)

	// reader1 watches; first message arrives there.
	w, _ := (Msg{Type: MsgWatch, Sock: sock.ID()}).AppendTo(nil)
	if err := read1.Send(w); err != nil {
		t.Fatal(err)
	}
	go client.Write([]byte("first"))
	msg := netWait(t, read1)
	if msg.Type != MsgData || string(msg.Data) != "first" {
		t.Fatalf("first = %+v", msg)
	}

	// Handoff: unwatch on reader1, watch on reader2.
	u, _ := (Msg{Type: MsgUnwatch, Sock: sock.ID()}).AppendTo(nil)
	if err := read1.Send(u); err != nil {
		t.Fatal(err)
	}
	w2, _ := (Msg{Type: MsgWatch, Sock: sock.ID()}).AppendTo(nil)
	if err := read2.Send(w2); err != nil {
		t.Fatal(err)
	}
	// Give the unwatch a moment to land before sending.
	time.Sleep(50 * time.Millisecond)
	go client.Write([]byte("second"))
	msg = netWait(t, read2)
	if msg.Type != MsgData || string(msg.Data) != "second" {
		t.Fatalf("second = %+v", msg)
	}
	// reader1 must not have consumed it.
	if n, ok, _ := read1.Recv(make([]byte, 256)); ok {
		t.Fatalf("reader1 still delivered %d bytes after unwatch", n)
	}
}
