package netactors

import (
	"github.com/eactors/eactors-go/internal/core"
)

// readyDrainBudget bounds the ready-queue pops per READER invocation,
// keeping bodies short as the actor model demands (drainBatch frames
// per popped socket, so one invocation moves at most budget×drainBatch
// frames).
const readyDrainBudget = 64

// loopReaderSpec is ReaderSpec's readiness-loop variant. The watch set
// lives in a map keyed by socket id; the loop's dispatchers queue a
// socket (Socket.markReady) exactly when its inbox gains bytes or hits
// EOF, and the body drains exactly the queued sockets. Sockets whose
// forwarding channel filled (pending frames) move to a small backlog
// scanned every invocation — the bounded few under backpressure, not
// the whole watch set.
func (s *System) loopReaderSpec(name string, worker int, channels ...string) core.Spec {
	table := s.table
	rq := newReadyQueue()
	watches := make(map[uint32]*readWatch)
	var backlog []*readWatch
	var eps []*core.Endpoint
	var scratch []byte
	var stage core.SendStage
	recvBufs, recvLens := core.BatchBufs(drainBatch, core.DefaultNodePayload)
	return core.Spec{
		Name:   name,
		Worker: worker,
		Init: func(self *core.Self) error {
			eps = eps[:0]
			for _, ch := range channels {
				ep, err := self.Channel(ch)
				if err != nil {
					return err
				}
				eps = append(eps, ep)
			}
			return nil
		},
		Body: func(self *core.Self) {
			// Control traffic: watch/unwatch.
			for _, ep := range eps {
				n, _ := self.RecvBatch(ep, recvBufs, recvLens)
				for i := 0; i < n; i++ {
					msg, err := ParseMsg(recvBufs[i][:recvLens[i]])
					if err != nil {
						continue
					}
					switch msg.Type {
					case MsgWatch:
						if sock, ok := table.Get(msg.Sock); ok && sock.conn != nil {
							sock.SetWake(self.Waker())
							watches[sock.id] = &readWatch{ep: ep, sock: sock}
							// Install the queue before the pump binding so
							// bytes racing the watch have a landing spot.
							sock.SetReady(rq)
							sock.startReadPump()
							self.Progress()
						}
					case MsgUnwatch:
						if w, ok := watches[msg.Sock]; ok && w.ep == ep {
							delete(watches, msg.Sock)
							w.sock.unbindReady(rq)
							self.Progress()
						}
					}
				}
			}

			// Backpressured sockets: frames that hit a full forwarding
			// channel retry until the consumer drains.
			live := backlog[:0]
			for _, w := range backlog {
				if watches[w.sock.id] != w {
					continue // unwatched while backlogged
				}
				if !s.drainSocket(self, w, &stage, &scratch) {
					delete(watches, w.sock.id) // MsgClosed delivered
					continue
				}
				if len(w.pending) > 0 {
					live = append(live, w)
					continue
				}
				w.backlogged = false
				if w.sock.hasWork() {
					w.sock.markReady()
				}
			}
			backlog = live

			// Ready sockets: exactly the ones the loop queued.
			for popped := 0; popped < readyDrainBudget; popped++ {
				sock := rq.pop()
				if sock == nil {
					break
				}
				table.stats.bound.Add(-1)
				sock.queued.Store(false)
				w, ok := watches[sock.id]
				if !ok {
					// Not (or no longer) ours — a handoff raced the drain.
					// Its current owner's queue gets it back.
					if sock.hasWork() {
						sock.markReady()
					}
					continue
				}
				if w.backlogged {
					continue // the backlog pass owns this socket
				}
				if !s.drainSocket(self, w, &stage, &scratch) {
					delete(watches, sock.id) // MsgClosed delivered
					continue
				}
				if len(w.pending) > 0 {
					w.backlogged = true
					backlog = append(backlog, w)
					continue
				}
				if sock.hasWork() {
					sock.markReady() // partial drain: stay scheduled
				}
			}
		},
	}
}
