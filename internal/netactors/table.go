package netactors

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/eactors/eactors-go/internal/netloop"
)

// inboxCap bounds the per-socket receive queue between the pump
// goroutine and the READER eactor.
const inboxCap = 256

// readBufBytes is the pump's per-read buffer size.
const readBufBytes = 2048

// tableStats are the table-wide traffic counters. They live on the Table
// (sockets hold a pointer) so the totals survive socket teardown; the
// telemetry registry reads them at scrape time.
type tableStats struct {
	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64
	dials    atomic.Uint64
	accepts  atomic.Uint64
	dropped  atomic.Uint64
	// bound gauges the sockets currently queued for a READER drain
	// (netloop mode): data arrived and the drain has not run yet.
	bound atomic.Int64
}

// Socket wraps one connection or listener registered in a Table.
type Socket struct {
	id    uint32
	conn  net.Conn
	lis   net.Listener
	stats *tableStats

	inbox    chan []byte // filled by the read pump
	accepted chan uint32 // filled by the accept pump (listeners)
	eof      atomic.Bool
	eofSent  atomic.Bool
	// wake rings the watching eactor's worker doorbell when the pump
	// delivers data; it is swapped on connection handoff.
	wake atomic.Pointer[func()]

	// outbox feeds the write pump; a full outbox means the peer is not
	// draining and frames are dropped (slow-consumer policy), so the
	// WRITER eactor never blocks on a stalled connection.
	outbox       chan []byte
	quit         chan struct{}
	dropped      atomic.Uint64
	pumpOnce     sync.Once
	writeRunning atomic.Bool
	closeOnce    sync.Once
	closed       atomic.Bool

	// Readiness-loop state (nil/zero in legacy pump mode). loop is the
	// table's loop, rc/reg the socket's registration; ready points at
	// the watching READER's ready queue and queued dedups membership.
	loop   *netloop.Loop
	rc     syscall.RawConn
	reg    *netloop.Reg
	ready  atomic.Pointer[readyQueue]
	queued atomic.Bool
}

// Dropped returns the number of outbound frames dropped because the
// peer was not draining its connection.
func (s *Socket) Dropped() uint64 { return s.dropped.Load() }

// ID returns the socket identifier.
func (s *Socket) ID() uint32 { return s.id }

// Table registers sockets under small integer identifiers, the shared
// state of the networking eactors.
type Table struct {
	mu    sync.Mutex
	next  uint32
	socks map[uint32]*Socket

	writeDeadline time.Duration

	// loop, when non-nil, multiplexes connection reads through a
	// readiness loop instead of per-connection pump goroutines.
	loop *netloop.Loop

	stats tableStats
}

// NewTable creates an empty socket table.
func NewTable() *Table {
	return &Table{
		socks:         make(map[uint32]*Socket),
		writeDeadline: time.Second,
	}
}

// Loop returns the table's readiness loop, or nil in legacy pump mode.
func (t *Table) Loop() *netloop.Loop { return t.loop }

// errUnknownSocket reports an operation on an unregistered id.
var errUnknownSocket = errors.New("netactors: unknown socket")

// AddConn registers a connection and returns its socket.
func (t *Table) AddConn(conn net.Conn) *Socket {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	s := &Socket{
		id:     t.next,
		conn:   conn,
		stats:  &t.stats,
		loop:   t.loop,
		inbox:  make(chan []byte, inboxCap),
		outbox: make(chan []byte, inboxCap),
		quit:   make(chan struct{}),
	}
	t.socks[s.id] = s
	return s
}

// AddListener registers a listener and returns its socket.
func (t *Table) AddListener(lis net.Listener) *Socket {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	s := &Socket{
		id:       t.next,
		lis:      lis,
		stats:    &t.stats,
		accepted: make(chan uint32, inboxCap),
		quit:     make(chan struct{}),
	}
	t.socks[s.id] = s
	return s
}

// Get looks a socket up by id.
func (t *Table) Get(id uint32) (*Socket, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.socks[id]
	return s, ok
}

// Close closes and removes a socket.
func (t *Table) Close(id uint32) error {
	t.mu.Lock()
	s, ok := t.socks[id]
	delete(t.socks, id)
	t.mu.Unlock()
	if !ok {
		return errUnknownSocket
	}
	s.shutdown()
	return nil
}

// shutdown closes the socket's resources and releases its pumps. Queued
// outbound frames get a short drain window first, so a final protocol
// message (e.g. an auth failure) reaches the peer before the reset.
func (s *Socket) shutdown() {
	s.closed.Store(true)
	if s.conn != nil && s.outbox != nil {
		deadline := time.Now().Add(100 * time.Millisecond)
		for len(s.outbox) > 0 && s.writeRunning.Load() && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	if s.reg != nil {
		s.reg.Close() // before conn.Close, while the fd is still valid
	}
	s.closeOnce.Do(func() { close(s.quit) })
	if s.conn != nil {
		_ = s.conn.Close()
	}
	if s.lis != nil {
		_ = s.lis.Close()
	}
}

// CloseAll tears down every registered socket (shutdown path).
func (t *Table) CloseAll() {
	t.mu.Lock()
	socks := make([]*Socket, 0, len(t.socks))
	for _, s := range t.socks {
		socks = append(socks, s)
	}
	t.socks = make(map[uint32]*Socket)
	t.mu.Unlock()
	for _, s := range socks {
		s.shutdown()
	}
}

// Len returns the number of registered sockets.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.socks)
}

// SetWake installs (or replaces) the watcher's doorbell function.
func (s *Socket) SetWake(wake func()) {
	if wake == nil {
		s.wake.Store(nil)
		return
	}
	s.wake.Store(&wake)
}

func (s *Socket) ringWake() {
	if fn := s.wake.Load(); fn != nil {
		(*fn)()
	}
}

// startReadPump arranges for the socket's inbound bytes to reach its
// inbox, idempotently: in loop mode the connection is registered with
// the readiness loop (no goroutine until bytes arrive); otherwise — and
// for conns without a raw fd, like net.Pipe in tests — a pump goroutine
// parks in conn.Read on the runtime netpoller.
func (s *Socket) startReadPump() {
	s.pumpOnce.Do(func() {
		if s.loop != nil && s.bindLoop() {
			return
		}
		go func() {
			for {
				buf := make([]byte, readBufBytes)
				n, err := s.conn.Read(buf)
				if n > 0 {
					s.stats.bytesIn.Add(uint64(n))
					select {
					case s.inbox <- buf[:n]: // full queue applies backpressure
					case <-s.quit:
						return
					}
					s.markReady()
					s.ringWake()
				}
				if err != nil {
					s.eof.Store(true)
					s.markReady()
					s.ringWake()
					return
				}
			}
		}()
	})
}

// loopReadBudget bounds the reads one dispatch performs before handing
// the dispatcher back (level-triggered re-arming refires if bytes
// remain), keeping one firehose connection from starving the pool.
const loopReadBudget = 8

// bindLoop registers the connection with the readiness loop. Reports
// false when the conn exposes no raw fd (the caller falls back to a
// pump goroutine).
func (s *Socket) bindLoop() bool {
	sc, ok := s.conn.(syscall.Conn)
	if !ok {
		return false
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return false
	}
	s.rc = rc
	reg, err := s.loop.Register(rc, s.loopReadable)
	if err != nil {
		return false
	}
	s.reg = reg
	return true
}

// loopReadable is the socket's netloop handler: dispatched when the fd
// is readable, it performs bounded non-blocking reads into the inbox
// and queues the socket for its READER's drain. A full inbox returns
// Retry (backpressure — nothing is read, so nothing can be lost); EOF
// or a closed fd detaches the registration.
func (s *Socket) loopReadable() netloop.Action {
	for i := 0; i < loopReadBudget; i++ {
		if s.closed.Load() {
			return netloop.Detach
		}
		if len(s.inbox) == cap(s.inbox) {
			s.markReady() // ensure the drain is scheduled before backing off
			s.ringWake()
			return netloop.Retry
		}
		buf := make([]byte, readBufBytes)
		n, again, dead := netloop.RawRead(s.rc, buf)
		if n > 0 {
			s.stats.bytesIn.Add(uint64(n))
			// Cannot block: dispatches are serialized per registration,
			// so this handler is the only inbox producer and capacity
			// was checked above.
			s.inbox <- buf[:n]
			s.markReady()
			s.ringWake()
		}
		if dead {
			s.eof.Store(true)
			s.markReady()
			s.ringWake()
			return netloop.Detach
		}
		if again {
			return netloop.Rearm
		}
	}
	return netloop.Rearm
}

// hasWork reports whether a READER drain would make progress on this
// socket.
func (s *Socket) hasWork() bool {
	return len(s.inbox) > 0 || (s.eof.Load() && !s.eofSent.Load())
}

// markReady queues the socket on its READER's ready queue (dedup'd by
// the queued flag), so loop-mode READERs drain exactly the sockets with
// pending work instead of scanning every watch.
func (s *Socket) markReady() {
	rq := s.ready.Load()
	if rq == nil {
		return
	}
	if s.queued.CompareAndSwap(false, true) {
		s.stats.bound.Add(1)
		rq.push(s)
	}
}

// SetReady installs the watching READER's ready queue and schedules a
// drain for any bytes that raced the watch.
func (s *Socket) SetReady(rq *readyQueue) {
	s.ready.Store(rq)
	if s.hasWork() {
		s.markReady()
	}
}

// unbindReady detaches the socket from rq on unwatch: the queue pointer
// is cleared only if no successor READER has already claimed the socket
// (connection handoff installs the new queue concurrently), and a
// queued-but-undrained socket is re-routed to its current queue.
func (s *Socket) unbindReady(rq *readyQueue) {
	s.ready.CompareAndSwap(rq, nil)
	if rq.remove(s) {
		s.stats.bound.Add(-1)
		s.queued.Store(false)
		if s.hasWork() {
			s.markReady()
		}
	}
}

// startAcceptPump launches the goroutine accepting connections for a
// watched listener, registering each in the table.
func (s *Socket) startAcceptPump(t *Table) {
	s.pumpOnce.Do(func() {
		go func() {
			for {
				conn, err := s.lis.Accept()
				if err != nil {
					s.eof.Store(true)
					s.ringWake()
					return
				}
				ns := t.AddConn(conn)
				t.stats.accepts.Add(1)
				s.accepted <- ns.id
				s.ringWake()
			}
		}()
	})
}

// errBackpressure reports a frame dropped because the peer is not
// draining its connection.
var errBackpressure = errors.New("netactors: outbound frame dropped (slow consumer)")

// writePumpIdle is how long a write pump lingers without traffic before
// exiting. Pumps are restartable (ensureWritePump), so an idle
// connection costs zero goroutines — at 10k mostly-idle connections the
// lingering pumps would otherwise dominate the goroutine count.
const writePumpIdle = 250 * time.Millisecond

// ensureWritePump guarantees a pump goroutine is draining the outbox.
func (s *Socket) ensureWritePump(deadline time.Duration) {
	if s.writeRunning.CompareAndSwap(false, true) {
		go s.writePump(deadline)
	}
}

// writePump performs the blocking writes for a connection, exiting when
// the socket closes, the connection errors, or the outbox stays empty
// for writePumpIdle (the frame-arrives-as-we-exit race is closed by a
// post-clear recheck and by Write's enqueue-then-ensure ordering).
func (s *Socket) writePump(deadline time.Duration) {
	idle := time.NewTimer(writePumpIdle)
	defer idle.Stop()
	for {
		select {
		case frame := <-s.outbox:
			if deadline > 0 {
				_ = s.conn.SetWriteDeadline(time.Now().Add(deadline))
			}
			n, err := s.conn.Write(frame)
			s.stats.bytesOut.Add(uint64(n))
			if err != nil {
				s.writeRunning.Store(false)
				return // read side reports the failure as EOF
			}
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(writePumpIdle)
		case <-s.quit:
			s.writeRunning.Store(false)
			return
		case <-idle.C:
			s.writeRunning.Store(false)
			// A frame may have been enqueued between the timer firing
			// and the flag clearing; reclaim the pump role or leave it
			// to the Write that lost the race.
			if len(s.outbox) > 0 && s.writeRunning.CompareAndSwap(false, true) {
				idle.Reset(writePumpIdle)
				continue
			}
			return
		}
	}
}

// Write queues data for the connection's write pump. A stalled peer
// costs a dropped frame, never a blocked eactor (the paper's WRITER
// uses non-blocking send syscalls for the same reason).
func (t *Table) Write(id uint32, data []byte) error {
	s, ok := t.Get(id)
	if !ok || s.conn == nil {
		return errUnknownSocket
	}
	frame := make([]byte, len(data))
	copy(frame, data)
	select {
	case s.outbox <- frame:
		s.ensureWritePump(t.writeDeadline)
		return nil
	default:
		s.dropped.Add(1)
		t.stats.dropped.Add(1)
		return errBackpressure
	}
}

// queueDepth sums the queued inbound and outbound frames of every
// registered socket — the aggregate per-connection backlog.
func (t *Table) queueDepth() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var depth int
	for _, s := range t.socks {
		depth += len(s.inbox) + len(s.outbox)
	}
	return uint64(depth)
}
