package netactors

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// inboxCap bounds the per-socket receive queue between the pump
// goroutine and the READER eactor.
const inboxCap = 256

// readBufBytes is the pump's per-read buffer size.
const readBufBytes = 2048

// tableStats are the table-wide traffic counters. They live on the Table
// (sockets hold a pointer) so the totals survive socket teardown; the
// telemetry registry reads them at scrape time.
type tableStats struct {
	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64
	dials    atomic.Uint64
	accepts  atomic.Uint64
	dropped  atomic.Uint64
}

// Socket wraps one connection or listener registered in a Table.
type Socket struct {
	id    uint32
	conn  net.Conn
	lis   net.Listener
	stats *tableStats

	inbox    chan []byte // filled by the read pump
	accepted chan uint32 // filled by the accept pump (listeners)
	eof      atomic.Bool
	eofSent  atomic.Bool
	// wake rings the watching eactor's worker doorbell when the pump
	// delivers data; it is swapped on connection handoff.
	wake atomic.Pointer[func()]

	// outbox feeds the write pump; a full outbox means the peer is not
	// draining and frames are dropped (slow-consumer policy), so the
	// WRITER eactor never blocks on a stalled connection.
	outbox        chan []byte
	quit          chan struct{}
	dropped       atomic.Uint64
	pumpOnce      sync.Once
	writePumpOnce sync.Once
	closeOnce     sync.Once
	closed        atomic.Bool
}

// Dropped returns the number of outbound frames dropped because the
// peer was not draining its connection.
func (s *Socket) Dropped() uint64 { return s.dropped.Load() }

// ID returns the socket identifier.
func (s *Socket) ID() uint32 { return s.id }

// Table registers sockets under small integer identifiers, the shared
// state of the networking eactors.
type Table struct {
	mu    sync.Mutex
	next  uint32
	socks map[uint32]*Socket

	writeDeadline time.Duration

	stats tableStats
}

// NewTable creates an empty socket table.
func NewTable() *Table {
	return &Table{
		socks:         make(map[uint32]*Socket),
		writeDeadline: time.Second,
	}
}

// errUnknownSocket reports an operation on an unregistered id.
var errUnknownSocket = errors.New("netactors: unknown socket")

// AddConn registers a connection and returns its socket.
func (t *Table) AddConn(conn net.Conn) *Socket {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	s := &Socket{
		id:     t.next,
		conn:   conn,
		stats:  &t.stats,
		inbox:  make(chan []byte, inboxCap),
		outbox: make(chan []byte, inboxCap),
		quit:   make(chan struct{}),
	}
	t.socks[s.id] = s
	return s
}

// AddListener registers a listener and returns its socket.
func (t *Table) AddListener(lis net.Listener) *Socket {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	s := &Socket{
		id:       t.next,
		lis:      lis,
		stats:    &t.stats,
		accepted: make(chan uint32, inboxCap),
		quit:     make(chan struct{}),
	}
	t.socks[s.id] = s
	return s
}

// Get looks a socket up by id.
func (t *Table) Get(id uint32) (*Socket, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.socks[id]
	return s, ok
}

// Close closes and removes a socket.
func (t *Table) Close(id uint32) error {
	t.mu.Lock()
	s, ok := t.socks[id]
	delete(t.socks, id)
	t.mu.Unlock()
	if !ok {
		return errUnknownSocket
	}
	s.shutdown()
	return nil
}

// shutdown closes the socket's resources and releases its pumps. Queued
// outbound frames get a short drain window first, so a final protocol
// message (e.g. an auth failure) reaches the peer before the reset.
func (s *Socket) shutdown() {
	s.closed.Store(true)
	if s.conn != nil && s.outbox != nil {
		deadline := time.Now().Add(100 * time.Millisecond)
		for len(s.outbox) > 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	s.closeOnce.Do(func() { close(s.quit) })
	if s.conn != nil {
		_ = s.conn.Close()
	}
	if s.lis != nil {
		_ = s.lis.Close()
	}
}

// CloseAll tears down every registered socket (shutdown path).
func (t *Table) CloseAll() {
	t.mu.Lock()
	socks := make([]*Socket, 0, len(t.socks))
	for _, s := range t.socks {
		socks = append(socks, s)
	}
	t.socks = make(map[uint32]*Socket)
	t.mu.Unlock()
	for _, s := range socks {
		s.shutdown()
	}
}

// Len returns the number of registered sockets.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.socks)
}

// SetWake installs (or replaces) the watcher's doorbell function.
func (s *Socket) SetWake(wake func()) {
	if wake == nil {
		s.wake.Store(nil)
		return
	}
	s.wake.Store(&wake)
}

func (s *Socket) ringWake() {
	if fn := s.wake.Load(); fn != nil {
		(*fn)()
	}
}

// startReadPump launches the goroutine that performs the (netpoller-
// parked) reads for a watched connection, idempotently.
func (s *Socket) startReadPump() {
	s.pumpOnce.Do(func() {
		go func() {
			for {
				buf := make([]byte, readBufBytes)
				n, err := s.conn.Read(buf)
				if n > 0 {
					s.stats.bytesIn.Add(uint64(n))
					select {
					case s.inbox <- buf[:n]: // full queue applies backpressure
					case <-s.quit:
						return
					}
					s.ringWake()
				}
				if err != nil {
					s.eof.Store(true)
					s.ringWake()
					return
				}
			}
		}()
	})
}

// startAcceptPump launches the goroutine accepting connections for a
// watched listener, registering each in the table.
func (s *Socket) startAcceptPump(t *Table) {
	s.pumpOnce.Do(func() {
		go func() {
			for {
				conn, err := s.lis.Accept()
				if err != nil {
					s.eof.Store(true)
					s.ringWake()
					return
				}
				ns := t.AddConn(conn)
				t.stats.accepts.Add(1)
				s.accepted <- ns.id
				s.ringWake()
			}
		}()
	})
}

// errBackpressure reports a frame dropped because the peer is not
// draining its connection.
var errBackpressure = errors.New("netactors: outbound frame dropped (slow consumer)")

// startWritePump launches the goroutine performing the blocking writes
// for a connection, idempotently.
func (s *Socket) startWritePump(deadline time.Duration) {
	s.writePumpOnce.Do(func() {
		go func() {
			for {
				select {
				case frame := <-s.outbox:
					if deadline > 0 {
						_ = s.conn.SetWriteDeadline(time.Now().Add(deadline))
					}
					n, err := s.conn.Write(frame)
					s.stats.bytesOut.Add(uint64(n))
					if err != nil {
						return // read pump reports the failure as EOF
					}
				case <-s.quit:
					return
				}
			}
		}()
	})
}

// Write queues data for the connection's write pump. A stalled peer
// costs a dropped frame, never a blocked eactor (the paper's WRITER
// uses non-blocking send syscalls for the same reason).
func (t *Table) Write(id uint32, data []byte) error {
	s, ok := t.Get(id)
	if !ok || s.conn == nil {
		return errUnknownSocket
	}
	s.startWritePump(t.writeDeadline)
	frame := make([]byte, len(data))
	copy(frame, data)
	select {
	case s.outbox <- frame:
		return nil
	default:
		s.dropped.Add(1)
		t.stats.dropped.Add(1)
		return errBackpressure
	}
}

// queueDepth sums the queued inbound and outbound frames of every
// registered socket — the aggregate per-connection backlog.
func (t *Table) queueDepth() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var depth int
	for _, s := range t.socks {
		depth += len(s.inbox) + len(s.outbox)
	}
	return uint64(depth)
}
