// Package netactors provides the EActors networking system eactors
// (Section 4.2 of the paper): OPENER, ACCEPTER, READER, WRITER and
// CLOSER. Enclaves cannot perform system calls, so these eactors always
// run untrusted and bridge sockets to enclaved application eactors over
// ordinary channels.
//
// Substitution note: the paper's READER issues non-blocking recv system
// calls directly. Go's runtime netpoller is the idiomatic equivalent of
// non-blocking I/O — a blocking conn.Read parks a goroutine on epoll
// rather than a thread — so each watched socket is backed by a small pump
// goroutine feeding a bounded queue that the READER eactor drains
// non-blockingly. At the actor layer the semantics (polling, batching,
// per-socket mboxes) match the paper.
package netactors

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MsgType discriminates messages exchanged with the system eactors.
type MsgType uint8

// Message types of the networking protocol.
const (
	// MsgListen asks the OPENER to create a server socket; Data is the
	// listen address.
	MsgListen MsgType = iota + 1
	// MsgDial asks the OPENER to create a client socket; Data is the
	// remote address.
	MsgDial
	// MsgOpenOK returns the socket identifier for a successful
	// listen/dial.
	MsgOpenOK
	// MsgOpenErr reports a failed listen/dial; Data is the error text.
	MsgOpenErr
	// MsgWatch registers a socket with an ACCEPTER (listener) or READER
	// (connection).
	MsgWatch
	// MsgAccepted announces a newly accepted connection socket.
	MsgAccepted
	// MsgData carries payload bytes to (WRITER) or from (READER) a
	// socket.
	MsgData
	// MsgClosed announces that a watched socket hit EOF or an error.
	MsgClosed
	// MsgClose asks the CLOSER to close a socket.
	MsgClose
	// MsgUnwatch removes a READER watch so another READER can take the
	// socket over (connection handoff between eactors).
	MsgUnwatch
)

const msgHeader = 1 + 4 + 2 // type + sock + length

// Msg is one message of the networking protocol.
type Msg struct {
	Type MsgType
	Sock uint32
	Data []byte
}

// ErrShortMsg reports a truncated encoding.
var ErrShortMsg = errors.New("netactors: short message")

// MaxData returns the largest Data payload fitting a node of the given
// capacity.
func MaxData(nodeCapacity int) int { return nodeCapacity - msgHeader }

// AppendTo encodes m at the end of buf.
func (m Msg) AppendTo(buf []byte) ([]byte, error) {
	if len(m.Data) > 0xFFFF {
		return nil, fmt.Errorf("netactors: data %d exceeds 64 KiB frame limit", len(m.Data))
	}
	var hdr [msgHeader]byte
	hdr[0] = byte(m.Type)
	binary.LittleEndian.PutUint32(hdr[1:], m.Sock)
	binary.LittleEndian.PutUint16(hdr[5:], uint16(len(m.Data)))
	buf = append(buf, hdr[:]...)
	return append(buf, m.Data...), nil
}

// ParseMsg decodes one message. The returned Data aliases b.
func ParseMsg(b []byte) (Msg, error) {
	if len(b) < msgHeader {
		return Msg{}, ErrShortMsg
	}
	n := int(binary.LittleEndian.Uint16(b[5:]))
	if len(b) < msgHeader+n {
		return Msg{}, ErrShortMsg
	}
	return Msg{
		Type: MsgType(b[0]),
		Sock: binary.LittleEndian.Uint32(b[1:]),
		Data: b[msgHeader : msgHeader+n],
	}, nil
}
