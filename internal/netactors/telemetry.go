package netactors

import (
	"github.com/eactors/eactors-go/internal/telemetry"
)

// AttachTelemetry exposes the socket table's traffic counters through
// reg. The table atomics remain the single source of truth — the
// registry reads them at scrape time, so the networking pumps carry no
// extra instrumentation branches.
func (s *System) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	t := s.table
	reg.CounterFunc("eactors_net_bytes_in", "bytes read from connections", t.stats.bytesIn.Load)
	reg.CounterFunc("eactors_net_bytes_out", "bytes written to connections", t.stats.bytesOut.Load)
	reg.CounterFunc("eactors_net_dials", "outbound connections established", t.stats.dials.Load)
	reg.CounterFunc("eactors_net_accepts", "inbound connections accepted", t.stats.accepts.Load)
	reg.CounterFunc("eactors_net_dropped_frames", "outbound frames dropped on slow consumers", t.stats.dropped.Load)
	reg.GaugeFunc("eactors_net_sockets", "sockets registered in the table",
		func() uint64 { return uint64(t.Len()) })
	reg.GaugeFunc("eactors_net_queue_depth", "queued frames across all per-connection inboxes and outboxes",
		t.queueDepth)
	if l := t.loop; l != nil {
		reg.CounterFunc("eactors_netloop_ready_events", "readiness events delivered by the pollers", l.ReadyEvents)
		reg.CounterFunc("eactors_netloop_dispatches", "readiness handler invocations", l.Dispatches)
		reg.CounterFunc("eactors_netloop_retries", "backpressure re-dispatches (consumer inbox full)", l.Retries)
		reg.CounterFunc("eactors_netloop_sheds", "dispatch-queue-full intake stalls", l.Sheds)
		reg.GaugeFunc("eactors_netloop_registered", "connections registered with the readiness loop", l.Registered)
		reg.GaugeFunc("eactors_netloop_dispatch_queue", "instantaneous dispatch queue occupancy", l.QueueDepth)
		reg.GaugeFunc("eactors_netloop_bound_readers", "sockets queued for a READER drain",
			func() uint64 {
				if b := t.stats.bound.Load(); b > 0 {
					return uint64(b)
				}
				return 0
			})
	}
}
