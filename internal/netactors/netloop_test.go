package netactors

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/netloop"
	"github.com/eactors/eactors-go/internal/sgx"
)

// startEcho deploys the full OPENER/ACCEPTER/READER/WRITER echo
// pipeline on sys and returns the bound address. Used by both legacy-
// and loop-mode tests so the two paths run identical traffic.
func startEcho(t *testing.T, sys *System) (addr string, stop func()) {
	t.Helper()
	addrCh := make(chan string, 1)

	const (
		stOpen = iota
		stWatchListener
		stServe
	)
	type echoState struct {
		phase   int
		scratch []byte
	}

	echo := core.Spec{
		Name:   "echo",
		Worker: 0,
		State:  &echoState{},
		Body: func(self *core.Self) {
			st := self.State.(*echoState)
			opener := self.MustChannel("open")
			accept := self.MustChannel("accept")
			read := self.MustChannel("read")
			write := self.MustChannel("write")
			buf := make([]byte, 2048)

			switch st.phase {
			case stOpen:
				m, _ := (Msg{Type: MsgListen, Data: []byte("127.0.0.1:0")}).AppendTo(nil)
				if opener.Send(m) == nil {
					st.phase = stWatchListener
					self.Progress()
				}
			case stWatchListener:
				n, ok, err := opener.Recv(buf)
				if err != nil || !ok {
					return
				}
				msg, err := ParseMsg(buf[:n])
				if err != nil || msg.Type != MsgOpenOK {
					t.Errorf("listen failed: %+v err=%v", msg, err)
					self.StopRuntime()
					return
				}
				addrCh <- string(msg.Data)
				w, _ := (Msg{Type: MsgWatch, Sock: msg.Sock}).AppendTo(nil)
				if accept.Send(w) == nil {
					st.phase = stServe
					self.Progress()
				}
			case stServe:
				if n, ok, _ := accept.Recv(buf); ok {
					if msg, err := ParseMsg(buf[:n]); err == nil && msg.Type == MsgAccepted {
						w, _ := (Msg{Type: MsgWatch, Sock: msg.Sock}).AppendTo(st.scratch[:0])
						st.scratch = w
						_ = read.Send(w) //sendcheck:ok
						self.Progress()
					}
				}
				for i := 0; i < drainBatch; i++ {
					n, ok, _ := read.Recv(buf)
					if !ok {
						break
					}
					if msg, err := ParseMsg(buf[:n]); err == nil && msg.Type == MsgData {
						out, _ := (Msg{Type: MsgData, Sock: msg.Sock, Data: msg.Data}).AppendTo(nil)
						_ = write.Send(out) //sendcheck:ok
						self.Progress()
					}
				}
			}
		},
	}

	cfg := core.Config{
		Workers: []core.WorkerSpec{{}, {}},
		Actors: []core.Spec{
			echo,
			sys.OpenerSpec("opener", 1, "open"),
			sys.AccepterSpec("accepter", 1, "accept"),
			sys.ReaderSpec("reader", 1, "read"),
			sys.WriterSpec("writer", 1, "write"),
			sys.CloserSpec("closer", 1, "close"),
		},
		Channels: []core.ChannelSpec{
			{Name: "open", A: "echo", B: "opener"},
			{Name: "accept", A: "echo", B: "accepter"},
			{Name: "read", A: "echo", B: "reader", Capacity: 256},
			{Name: "write", A: "echo", B: "writer", Capacity: 256},
			{Name: "close", A: "echo", B: "closer"},
		},
	}
	rt, err := core.NewRuntime(sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel())), cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	select {
	case addr = <-addrCh:
	case <-time.After(5 * time.Second):
		rt.Stop()
		t.Fatal("no listen address from the pipeline")
	}
	return addr, rt.Stop
}

// echoRounds runs request/response rounds against an echo server.
func echoRounds(t *testing.T, addr string, rounds int, payload []byte) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	got := make([]byte, len(payload))
	for round := 0; round < rounds; round++ {
		if _, err := conn.Write(payload); err != nil {
			t.Fatalf("round %d write: %v", round, err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		n := 0
		for n < len(payload) {
			k, err := conn.Read(got[n:])
			if err != nil {
				t.Fatalf("round %d read after %d bytes: %v", round, n, err)
			}
			n += k
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round %d echo = %q, want %q", round, got, payload)
		}
	}
}

// TestEchoPipelineNetLoop is TestEchoPipeline with connection reads
// multiplexed by the readiness loop instead of per-connection pumps.
func TestEchoPipelineNetLoop(t *testing.T) {
	sys, err := NewSystemNetLoop(netloop.Config{Enabled: true, Dispatchers: 2})
	if err != nil {
		t.Fatalf("NewSystemNetLoop: %v", err)
	}
	defer sys.Shutdown()
	if sys.Loop() == nil {
		t.Fatal("loop mode requested but Loop() is nil")
	}
	addr, stop := startEcho(t, sys)
	defer stop()

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			echoRounds(t, addr, 5, []byte(fmt.Sprintf("loop client %d payload", c)))
		}(c)
	}
	wg.Wait()
	if sys.Loop().Dispatches() == 0 {
		t.Fatal("echo traffic flowed without any loop dispatches — loop not bound")
	}
}

// TestNetLoopSlowLoris drips bytes one at a time through the loop-bound
// pipeline: every partial frame must surface and echo back intact.
func TestNetLoopSlowLoris(t *testing.T) {
	sys, err := NewSystemNetLoop(netloop.Config{Enabled: true})
	if err != nil {
		t.Fatalf("NewSystemNetLoop: %v", err)
	}
	defer sys.Shutdown()
	addr, stop := startEcho(t, sys)
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	msg := []byte("dripped one byte at a time")
	for _, b := range msg {
		if _, err := conn.Write([]byte{b}); err != nil {
			t.Fatalf("drip write: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	got := make([]byte, len(msg))
	n := 0
	for n < len(msg) {
		k, err := conn.Read(got[n:])
		if err != nil {
			t.Fatalf("read after %d bytes: %v", n, err)
		}
		n += k
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q, want %q", got, msg)
	}
}

// TestNetLoopChurn slams the accept path with short-lived connections:
// accept, one echo round, close — the loop's registration set must not
// leak and late readiness events on recycled fds must be ignored.
func TestNetLoopChurn(t *testing.T) {
	sys, err := NewSystemNetLoop(netloop.Config{Enabled: true, Dispatchers: 2})
	if err != nil {
		t.Fatalf("NewSystemNetLoop: %v", err)
	}
	defer sys.Shutdown()
	addr, stop := startEcho(t, sys)
	defer stop()

	rounds := 60
	if testing.Short() {
		rounds = 15
	}
	for i := 0; i < rounds; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		if i%2 == 0 {
			payload := []byte("churn")
			if _, err := conn.Write(payload); err != nil {
				t.Fatalf("churn write %d: %v", i, err)
			}
			_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
			got := make([]byte, len(payload))
			n := 0
			for n < len(payload) {
				k, err := conn.Read(got[n:])
				if err != nil {
					t.Fatalf("churn read %d: %v", i, err)
				}
				n += k
			}
		}
		conn.Close()
	}
	// Registrations unwind as MsgClosed lands for each dead conn.
	deadline := time.Now().Add(10 * time.Second)
	for sys.Loop().Registered() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("churn leaked %d loop registrations", sys.Loop().Registered())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestNetLoopReaderEOF is the MsgClosed path over a real TCP socket
// bound to the readiness loop.
func TestNetLoopReaderEOF(t *testing.T) {
	sys, err := NewSystemNetLoop(netloop.Config{Enabled: true})
	if err != nil {
		t.Fatalf("NewSystemNetLoop: %v", err)
	}
	defer sys.Shutdown()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	connCh := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			connCh <- c
		}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	server := <-connCh
	defer server.Close()
	sock := sys.Table().AddConn(server)

	gotClosed := make(chan struct{}, 1)
	app := core.Spec{
		Name:   "app",
		Worker: 0,
		Body: func(self *core.Self) {
			read := self.MustChannel("read")
			buf := make([]byte, 2048)
			n, ok, _ := read.Recv(buf)
			if !ok {
				return
			}
			if msg, err := ParseMsg(buf[:n]); err == nil && msg.Type == MsgClosed && msg.Sock == sock.ID() {
				select {
				case gotClosed <- struct{}{}:
				default:
				}
			}
			self.Progress()
		},
		Init: func(self *core.Self) error {
			w, _ := (Msg{Type: MsgWatch, Sock: sock.ID()}).AppendTo(nil)
			return self.MustChannel("read").Send(w)
		},
	}
	cfg := core.Config{
		Workers: []core.WorkerSpec{{}},
		Actors: []core.Spec{
			app,
			sys.ReaderSpec("reader", 0, "read"),
		},
		Channels: []core.ChannelSpec{{Name: "read", A: "app", B: "reader"}},
	}
	rt, err := core.NewRuntime(sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel())), cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer rt.Stop()

	_ = client.Close()
	select {
	case <-gotClosed:
	case <-time.After(5 * time.Second):
		t.Fatal("MsgClosed never delivered in loop mode")
	}
}

// TestNetLoopPipeFallback watches a net.Pipe conn (no raw fd) under a
// loop-enabled system: the socket must fall back to a legacy pump and
// still deliver data and EOF.
func TestNetLoopPipeFallback(t *testing.T) {
	sys, err := NewSystemNetLoop(netloop.Config{Enabled: true})
	if err != nil {
		t.Fatalf("NewSystemNetLoop: %v", err)
	}
	defer sys.Shutdown()

	client, server := net.Pipe()
	sock := sys.Table().AddConn(server)

	gotData := make(chan []byte, 4)
	gotClosed := make(chan struct{}, 1)
	app := core.Spec{
		Name:   "app",
		Worker: 0,
		Body: func(self *core.Self) {
			read := self.MustChannel("read")
			buf := make([]byte, 2048)
			n, ok, _ := read.Recv(buf)
			if !ok {
				return
			}
			if msg, err := ParseMsg(buf[:n]); err == nil && msg.Sock == sock.ID() {
				switch msg.Type {
				case MsgData:
					gotData <- append([]byte(nil), msg.Data...)
				case MsgClosed:
					select {
					case gotClosed <- struct{}{}:
					default:
					}
				}
			}
			self.Progress()
		},
		Init: func(self *core.Self) error {
			w, _ := (Msg{Type: MsgWatch, Sock: sock.ID()}).AppendTo(nil)
			return self.MustChannel("read").Send(w)
		},
	}
	cfg := core.Config{
		Workers: []core.WorkerSpec{{}},
		Actors: []core.Spec{
			app,
			sys.ReaderSpec("reader", 0, "read"),
		},
		Channels: []core.ChannelSpec{{Name: "read", A: "app", B: "reader"}},
	}
	rt, err := core.NewRuntime(sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel())), cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer rt.Stop()

	go func() {
		_, _ = client.Write([]byte("via fallback pump"))
		_ = client.Close()
	}()
	select {
	case data := <-gotData:
		if !bytes.Equal(data, []byte("via fallback pump")) {
			t.Fatalf("fallback data = %q", data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fallback pump delivered nothing")
	}
	select {
	case <-gotClosed:
	case <-time.After(5 * time.Second):
		t.Fatal("fallback pump never delivered MsgClosed")
	}
	if sys.Loop().Registered() != 0 {
		t.Fatalf("pipe conn registered with the loop: %d", sys.Loop().Registered())
	}
}

// TestNetLoopHandoff moves a watched socket between two READers — the
// XMPP connector's handshake-to-shard handoff — while the client keeps
// writing. No bytes may be lost and the second READER must keep
// receiving after the first unbinds.
func TestNetLoopHandoff(t *testing.T) {
	sys, err := NewSystemNetLoop(netloop.Config{Enabled: true, Dispatchers: 2})
	if err != nil {
		t.Fatalf("NewSystemNetLoop: %v", err)
	}
	defer sys.Shutdown()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	connCh := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			connCh <- c
		}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	server := <-connCh
	defer server.Close()
	sock := sys.Table().AddConn(server)

	var mu sync.Mutex
	fromA, fromB := []byte(nil), []byte(nil)
	handedOff := make(chan struct{})

	const handoffAt = 32 // bytes seen by A before it hands the socket to B

	appA := core.Spec{
		Name:   "app-a",
		Worker: 0,
		Init: func(self *core.Self) error {
			w, _ := (Msg{Type: MsgWatch, Sock: sock.ID()}).AppendTo(nil)
			return self.MustChannel("read-a").Send(w)
		},
		Body: func(self *core.Self) {
			read := self.MustChannel("read-a")
			buf := make([]byte, 2048)
			n, ok, _ := read.Recv(buf)
			if !ok {
				return
			}
			self.Progress()
			msg, err := ParseMsg(buf[:n])
			if err != nil || msg.Type != MsgData {
				return
			}
			mu.Lock()
			fromA = append(fromA, msg.Data...)
			cut := len(fromA) >= handoffAt
			mu.Unlock()
			if cut {
				select {
				case <-handedOff:
				default:
					u, _ := (Msg{Type: MsgUnwatch, Sock: sock.ID()}).AppendTo(nil)
					if read.Send(u) == nil {
						close(handedOff)
					}
				}
			}
		},
	}
	appB := core.Spec{
		Name:   "app-b",
		Worker: 0,
		Body: func(self *core.Self) {
			read := self.MustChannel("read-b")
			select {
			case <-handedOff:
			default:
				return // A still owns the socket
			}
			buf := make([]byte, 2048)
			n, ok, _ := read.Recv(buf)
			if !ok {
				// Watch exactly once after handoff.
				mu.Lock()
				watched := fromB != nil
				mu.Unlock()
				if !watched {
					w, _ := (Msg{Type: MsgWatch, Sock: sock.ID()}).AppendTo(nil)
					if read.Send(w) == nil {
						mu.Lock()
						fromB = []byte{}
						mu.Unlock()
						self.Progress()
					}
				}
				return
			}
			self.Progress()
			if msg, err := ParseMsg(buf[:n]); err == nil && msg.Type == MsgData {
				mu.Lock()
				fromB = append(fromB, msg.Data...)
				mu.Unlock()
			}
		},
	}

	cfg := core.Config{
		Workers: []core.WorkerSpec{{}, {}},
		Actors: []core.Spec{
			appA, appB,
			sys.ReaderSpec("reader-a", 1, "read-a"),
			sys.ReaderSpec("reader-b", 1, "read-b"),
		},
		Channels: []core.ChannelSpec{
			{Name: "read-a", A: "app-a", B: "reader-a", Capacity: 256},
			{Name: "read-b", A: "app-b", B: "reader-b", Capacity: 256},
		},
	}
	rt, err := core.NewRuntime(sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel())), cfg)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer rt.Stop()

	// Stream numbered 8-byte records so loss or reordering is visible.
	const records = 200
	go func() {
		for i := 0; i < records; i++ {
			if _, err := client.Write([]byte(fmt.Sprintf("r%06d\n", i))); err != nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var total []byte
	deadline := time.Now().Add(30 * time.Second)
	want := records * 8
	for {
		mu.Lock()
		total = append(append([]byte(nil), fromA...), fromB...)
		mu.Unlock()
		if len(total) >= want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d/%d bytes across handoff (A=%d B=%d)",
				len(total), want, len(fromA), len(fromB))
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < records; i++ {
		rec := []byte(fmt.Sprintf("r%06d\n", i))
		if !bytes.Equal(total[i*8:i*8+8], rec) {
			t.Fatalf("record %d corrupted across handoff: %q", i, total[i*8:i*8+8])
		}
	}
	mu.Lock()
	gotB := len(fromB)
	mu.Unlock()
	if gotB == 0 {
		t.Fatal("second READER never received data after handoff")
	}
}

// TestNetLoopMixedSoak runs a legacy system and a loop system side by
// side under concurrent clients — the -race soak for shared-state
// violations between the two paths.
func TestNetLoopMixedSoak(t *testing.T) {
	legacy := NewSystem()
	defer legacy.Shutdown()
	loopSys, err := NewSystemNetLoop(netloop.Config{Enabled: true, Dispatchers: 2})
	if err != nil {
		t.Fatalf("NewSystemNetLoop: %v", err)
	}
	defer loopSys.Shutdown()

	legacyAddr, stopLegacy := startEcho(t, legacy)
	defer stopLegacy()
	loopAddr, stopLoop := startEcho(t, loopSys)
	defer stopLoop()

	rounds := 10
	if testing.Short() {
		rounds = 3
	}
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		for _, addr := range []string{legacyAddr, loopAddr} {
			wg.Add(1)
			go func(c int, addr string) {
				defer wg.Done()
				echoRounds(t, addr, rounds, []byte(fmt.Sprintf("soak client %d", c)))
			}(c, addr)
		}
	}
	wg.Wait()
}
