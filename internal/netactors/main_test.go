package netactors

import (
	"testing"

	"github.com/eactors/eactors-go/internal/testutil/leakcheck"
)

// TestMain fails the package if tests leak goroutines — read pumps,
// write pumps, loop pollers and dispatchers must all unwind when their
// system shuts down.
func TestMain(m *testing.M) { leakcheck.Main(m) }
