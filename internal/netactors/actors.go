package netactors

import (
	"net"
	"time"

	"github.com/eactors/eactors-go/internal/core"
)

// dialTimeout bounds OPENER dial attempts.
const dialTimeout = 2 * time.Second

// drainBatch bounds how many chunks a READER forwards per socket per
// body invocation, keeping bodies short as the actor model demands.
const drainBatch = 16

// System owns the socket table and builds the five networking eactor
// specs. All of them must be deployed untrusted (Worker placement is
// free, Enclave must stay empty), since they perform system calls on
// behalf of enclaved eactors.
type System struct {
	table *Table
}

// NewSystem creates a networking system with an empty socket table.
func NewSystem() *System { return &System{table: NewTable()} }

// Table exposes the socket table (for custom network actors, as the
// paper's XMPP service builds).
func (s *System) Table() *Table { return s.table }

// Shutdown closes every socket; call after the runtime has stopped.
func (s *System) Shutdown() { s.table.CloseAll() }

// reply sends a message on ep, retrying is impossible in a non-blocking
// body, so failures are reported to the caller.
func reply(ep *core.Endpoint, m Msg, scratch *[]byte) bool {
	buf, err := m.AppendTo((*scratch)[:0])
	if err != nil {
		return false
	}
	*scratch = buf
	return ep.Send(buf) == nil
}

// OpenerSpec builds the OPENER eactor serving the named channels: it
// creates server sockets (MsgListen) and client sockets (MsgDial) and
// returns their identifiers (MsgOpenOK/MsgOpenErr).
func (s *System) OpenerSpec(name string, worker int, channels ...string) core.Spec {
	table := s.table
	var eps []*core.Endpoint
	var scratch []byte
	recvBuf := make([]byte, core.DefaultNodePayload)
	return core.Spec{
		Name:   name,
		Worker: worker,
		Init: func(self *core.Self) error {
			for _, ch := range channels {
				ep, err := self.Channel(ch)
				if err != nil {
					return err
				}
				eps = append(eps, ep)
			}
			return nil
		},
		Body: func(self *core.Self) {
			for _, ep := range eps {
				n, ok, err := ep.Recv(recvBuf)
				if err != nil || !ok {
					continue
				}
				msg, err := ParseMsg(recvBuf[:n])
				if err != nil {
					continue
				}
				self.Progress()
				switch msg.Type {
				case MsgListen:
					lis, err := net.Listen("tcp", string(msg.Data))
					if err != nil {
						reply(ep, Msg{Type: MsgOpenErr, Data: []byte(err.Error())}, &scratch)
						continue
					}
					sock := table.AddListener(lis)
					// Return the bound address so ":0" listens work.
					reply(ep, Msg{Type: MsgOpenOK, Sock: sock.id, Data: []byte(lis.Addr().String())}, &scratch)
				case MsgDial:
					conn, err := net.DialTimeout("tcp", string(msg.Data), dialTimeout)
					if err != nil {
						reply(ep, Msg{Type: MsgOpenErr, Data: []byte(err.Error())}, &scratch)
						continue
					}
					sock := table.AddConn(conn)
					reply(ep, Msg{Type: MsgOpenOK, Sock: sock.id}, &scratch)
				}
			}
		},
	}
}

// AccepterSpec builds the ACCEPTER eactor: clients watch a listener
// socket (MsgWatch) and receive MsgAccepted for every new connection.
func (s *System) AccepterSpec(name string, worker int, channels ...string) core.Spec {
	table := s.table
	type watch struct {
		ep      *core.Endpoint
		sock    *Socket
		pending uint32 // accepted id whose announcement failed; 0 = none
	}
	var eps []*core.Endpoint
	var watches []*watch
	var scratch []byte
	recvBuf := make([]byte, core.DefaultNodePayload)
	return core.Spec{
		Name:   name,
		Worker: worker,
		Init: func(self *core.Self) error {
			for _, ch := range channels {
				ep, err := self.Channel(ch)
				if err != nil {
					return err
				}
				eps = append(eps, ep)
			}
			return nil
		},
		Body: func(self *core.Self) {
			for _, ep := range eps {
				n, ok, err := ep.Recv(recvBuf)
				if err != nil || !ok {
					continue
				}
				msg, err := ParseMsg(recvBuf[:n])
				if err != nil || msg.Type != MsgWatch {
					continue
				}
				if sock, ok := table.Get(msg.Sock); ok && sock.lis != nil {
					sock.SetWake(self.Waker())
					sock.startAcceptPump(table)
					watches = append(watches, &watch{ep: ep, sock: sock})
					self.Progress()
				}
			}
			for _, w := range watches {
			drain:
				for i := 0; i < drainBatch; i++ {
					id := w.pending
					if id == 0 {
						select {
						case id = <-w.sock.accepted:
						default:
							break drain
						}
					}
					if !reply(w.ep, Msg{Type: MsgAccepted, Sock: id}, &scratch) {
						w.pending = id // channel full: retry next round
						break drain
					}
					w.pending = 0
					self.Progress()
				}
			}
		},
	}
}

// ReaderSpec builds the READER eactor: clients watch connection sockets
// (MsgWatch) and receive their inbound bytes as MsgData, then a final
// MsgClosed at EOF.
func (s *System) ReaderSpec(name string, worker int, channels ...string) core.Spec {
	table := s.table
	type watch struct {
		ep      *core.Endpoint
		sock    *Socket
		pending []byte // chunk that failed to send, retried first
	}
	var eps []*core.Endpoint
	var watches []*watch
	var scratch []byte
	recvBuf := make([]byte, core.DefaultNodePayload)
	return core.Spec{
		Name:   name,
		Worker: worker,
		Init: func(self *core.Self) error {
			for _, ch := range channels {
				ep, err := self.Channel(ch)
				if err != nil {
					return err
				}
				eps = append(eps, ep)
			}
			return nil
		},
		Body: func(self *core.Self) {
			for _, ep := range eps {
				for {
					n, ok, err := ep.Recv(recvBuf)
					if err != nil || !ok {
						break
					}
					msg, err := ParseMsg(recvBuf[:n])
					if err != nil {
						continue
					}
					switch msg.Type {
					case MsgWatch:
						if sock, ok := table.Get(msg.Sock); ok && sock.conn != nil {
							sock.SetWake(self.Waker())
							sock.startReadPump()
							watches = append(watches, &watch{ep: ep, sock: sock})
							self.Progress()
						}
					case MsgUnwatch:
						for i, w := range watches {
							if w.sock.id == msg.Sock && w.ep == ep {
								watches = append(watches[:i], watches[i+1:]...)
								self.Progress()
								break
							}
						}
					}
				}
			}
			live := watches[:0]
			for _, w := range watches {
				if !s.drainSocket(self, w.ep, w.sock, &w.pending, &scratch) {
					continue // MsgClosed delivered; drop the watch
				}
				live = append(live, w)
			}
			watches = live
		},
	}
}

// drainSocket forwards up to drainBatch chunks from the socket's inbox,
// returning false once the socket is finished (MsgClosed sent).
func (s *System) drainSocket(self *core.Self, ep *core.Endpoint, sock *Socket, pending *[]byte, scratch *[]byte) bool {
	maxChunk := MaxData(ep.MaxPayload())
	for i := 0; i < drainBatch; i++ {
		var chunk []byte
		if len(*pending) > 0 {
			chunk = *pending
		} else {
			select {
			case chunk = <-sock.inbox:
			default:
				if sock.eof.Load() && !sock.eofSent.Load() {
					if reply(ep, Msg{Type: MsgClosed, Sock: sock.id}, scratch) {
						sock.eofSent.Store(true)
						self.Progress()
						return false
					}
				}
				return true
			}
		}
		// Split oversized chunks to the channel's frame limit.
		emit := chunk
		if len(emit) > maxChunk {
			emit = chunk[:maxChunk]
		}
		if !reply(ep, Msg{Type: MsgData, Sock: sock.id, Data: emit}, scratch) {
			*pending = chunk // retry next invocation
			return true
		}
		self.Progress()
		if len(chunk) > len(emit) {
			*pending = chunk[len(emit):]
		} else {
			*pending = nil
		}
	}
	return true
}

// WriterSpec builds the WRITER eactor: it writes MsgData payloads to
// their sockets. It also honours MsgClose, so a sender can order a
// final frame and the close on one FIFO channel (handshake-failure
// teardown needs exactly that ordering).
func (s *System) WriterSpec(name string, worker int, channels ...string) core.Spec {
	table := s.table
	var eps []*core.Endpoint
	recvBuf := make([]byte, core.DefaultNodePayload)
	return core.Spec{
		Name:   name,
		Worker: worker,
		Init: func(self *core.Self) error {
			for _, ch := range channels {
				ep, err := self.Channel(ch)
				if err != nil {
					return err
				}
				eps = append(eps, ep)
			}
			return nil
		},
		Body: func(self *core.Self) {
			for _, ep := range eps {
				for i := 0; i < drainBatch; i++ {
					n, ok, err := ep.Recv(recvBuf)
					if err != nil || !ok {
						break
					}
					msg, err := ParseMsg(recvBuf[:n])
					if err != nil {
						continue
					}
					switch msg.Type {
					case MsgData:
						_ = table.Write(msg.Sock, msg.Data) // peer EOF surfaces via READER
						self.Progress()
					case MsgClose:
						_ = table.Close(msg.Sock)
						self.Progress()
					}
				}
			}
		},
	}
}

// CloserSpec builds the CLOSER eactor: it closes sockets on MsgClose.
func (s *System) CloserSpec(name string, worker int, channels ...string) core.Spec {
	table := s.table
	var eps []*core.Endpoint
	recvBuf := make([]byte, core.DefaultNodePayload)
	return core.Spec{
		Name:   name,
		Worker: worker,
		Init: func(self *core.Self) error {
			for _, ch := range channels {
				ep, err := self.Channel(ch)
				if err != nil {
					return err
				}
				eps = append(eps, ep)
			}
			return nil
		},
		Body: func(self *core.Self) {
			for _, ep := range eps {
				n, ok, err := ep.Recv(recvBuf)
				if err != nil || !ok {
					continue
				}
				msg, err := ParseMsg(recvBuf[:n])
				if err != nil || msg.Type != MsgClose {
					continue
				}
				_ = table.Close(msg.Sock)
				self.Progress()
			}
		},
	}
}
