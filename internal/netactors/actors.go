package netactors

import (
	"net"
	"time"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/netloop"
	"github.com/eactors/eactors-go/internal/trace"
)

// dialTimeout bounds OPENER dial attempts.
const dialTimeout = 2 * time.Second

// drainBatch bounds how many chunks a READER forwards per socket per
// body invocation, keeping bodies short as the actor model demands.
const drainBatch = 16

// System owns the socket table and builds the five networking eactor
// specs. All of them must be deployed untrusted (Worker placement is
// free, Enclave must stay empty), since they perform system calls on
// behalf of enclaved eactors.
type System struct {
	table *Table
}

// NewSystem creates a networking system with an empty socket table and
// legacy goroutine-per-connection read pumps.
func NewSystem() *System { return &System{table: NewTable()} }

// NewSystemNetLoop creates a networking system whose connection reads
// are multiplexed by an event-driven readiness loop (internal/netloop):
// idle connections cost no goroutine, and a connection is bound to its
// READER's drain only when bytes are actually readable. With
// cfg.Enabled false this is NewSystem. The error surfaces platforms
// without a poller backend — callers choose between failing loudly and
// falling back to NewSystem.
func NewSystemNetLoop(cfg netloop.Config) (*System, error) {
	if !cfg.Enabled {
		return NewSystem(), nil
	}
	loop, err := netloop.New(cfg)
	if err != nil {
		return nil, err
	}
	t := NewTable()
	t.loop = loop
	return &System{table: t}, nil
}

// Table exposes the socket table (for custom network actors, as the
// paper's XMPP service builds).
func (s *System) Table() *Table { return s.table }

// Loop returns the readiness loop, or nil in legacy pump mode.
func (s *System) Loop() *netloop.Loop { return s.table.loop }

// Shutdown closes every socket, then the readiness loop (in that
// order — parked fallback pollers unblock when their conns close);
// call after the runtime has stopped.
func (s *System) Shutdown() {
	s.table.CloseAll()
	if s.table.loop != nil {
		s.table.loop.Close()
	}
}

// controlReplyDeadline bounds the SendRetry persistence of control
// replies (open/accept results) whose loss would wedge the requesting
// client; data paths shed load instead and never block this long.
const controlReplyDeadline = 50 * time.Millisecond

// reply encodes m and sends it on ep. The returned error is typed:
// core.ErrMailboxFull / core.ErrPoolEmpty mean a transient shortage the
// caller may retry on a later invocation; anything else is an encoding
// failure.
func reply(ep *core.Endpoint, m Msg, scratch *[]byte) error {
	buf, err := m.AppendTo((*scratch)[:0])
	if err != nil {
		return err
	}
	*scratch = buf
	return ep.Send(buf)
}

// replyRetry is reply with bounded persistence (Endpoint.SendRetry) for
// control messages that must not be lost to a transiently full channel.
func replyRetry(ep *core.Endpoint, m Msg, scratch *[]byte) error {
	buf, err := m.AppendTo((*scratch)[:0])
	if err != nil {
		return err
	}
	*scratch = buf
	return ep.SendRetry(buf, time.Now().Add(controlReplyDeadline))
}

// OpenerSpec builds the OPENER eactor serving the named channels: it
// creates server sockets (MsgListen) and client sockets (MsgDial) and
// returns their identifiers (MsgOpenOK/MsgOpenErr).
func (s *System) OpenerSpec(name string, worker int, channels ...string) core.Spec {
	table := s.table
	var eps []*core.Endpoint
	var scratch []byte
	recvBuf := make([]byte, core.DefaultNodePayload)
	return core.Spec{
		Name:   name,
		Worker: worker,
		Init: func(self *core.Self) error {
			for _, ch := range channels {
				ep, err := self.Channel(ch)
				if err != nil {
					return err
				}
				eps = append(eps, ep)
			}
			return nil
		},
		Body: func(self *core.Self) {
			for _, ep := range eps {
				n, ok, err := ep.Recv(recvBuf)
				if err != nil || !ok {
					continue
				}
				msg, err := ParseMsg(recvBuf[:n])
				if err != nil {
					continue
				}
				self.Progress()
				switch msg.Type {
				case MsgListen:
					lis, err := net.Listen("tcp", string(msg.Data))
					if err != nil {
						// A dropped open result wedges the requester, so
						// these replies persist through transient fullness;
						// past the deadline the client's own timeout rules.
						_ = replyRetry(ep, Msg{Type: MsgOpenErr, Data: []byte(err.Error())}, &scratch) //sendcheck:ok
						continue
					}
					sock := table.AddListener(lis)
					// Return the bound address so ":0" listens work.
					_ = replyRetry(ep, Msg{Type: MsgOpenOK, Sock: sock.id, Data: []byte(lis.Addr().String())}, &scratch) //sendcheck:ok
				case MsgDial:
					conn, err := net.DialTimeout("tcp", string(msg.Data), dialTimeout)
					if err != nil {
						_ = replyRetry(ep, Msg{Type: MsgOpenErr, Data: []byte(err.Error())}, &scratch) //sendcheck:ok
						continue
					}
					sock := table.AddConn(conn)
					table.stats.dials.Add(1)
					_ = replyRetry(ep, Msg{Type: MsgOpenOK, Sock: sock.id}, &scratch) //sendcheck:ok
				}
			}
		},
	}
}

// AccepterSpec builds the ACCEPTER eactor: clients watch a listener
// socket (MsgWatch) and receive MsgAccepted for every new connection.
func (s *System) AccepterSpec(name string, worker int, channels ...string) core.Spec {
	table := s.table
	type watch struct {
		ep      *core.Endpoint
		sock    *Socket
		pending uint32 // accepted id whose announcement failed; 0 = none
	}
	var eps []*core.Endpoint
	var watches []*watch
	var scratch []byte
	recvBuf := make([]byte, core.DefaultNodePayload)
	return core.Spec{
		Name:   name,
		Worker: worker,
		Init: func(self *core.Self) error {
			for _, ch := range channels {
				ep, err := self.Channel(ch)
				if err != nil {
					return err
				}
				eps = append(eps, ep)
			}
			return nil
		},
		Body: func(self *core.Self) {
			for _, ep := range eps {
				n, ok, err := ep.Recv(recvBuf)
				if err != nil || !ok {
					continue
				}
				msg, err := ParseMsg(recvBuf[:n])
				if err != nil || msg.Type != MsgWatch {
					continue
				}
				if sock, ok := table.Get(msg.Sock); ok && sock.lis != nil {
					sock.SetWake(self.Waker())
					sock.startAcceptPump(table)
					watches = append(watches, &watch{ep: ep, sock: sock})
					self.Progress()
				}
			}
			for _, w := range watches {
			drain:
				for i := 0; i < drainBatch; i++ {
					id := w.pending
					if id == 0 {
						select {
						case id = <-w.sock.accepted:
						default:
							break drain
						}
					}
					if reply(w.ep, Msg{Type: MsgAccepted, Sock: id}, &scratch) != nil {
						w.pending = id // channel full: retry next round
						break drain
					}
					w.pending = 0
					self.Progress()
				}
			}
		},
	}
}

// readWatch is one READER-watched connection socket.
type readWatch struct {
	ep      *core.Endpoint
	sock    *Socket
	pending [][]byte // encoded frames that hit a full channel, retried first
	tick    uint32   // per-socket trace sampling counter (trace.MaybeRoot)
	// backlogged marks the watch as owned by the loop-mode READER's
	// backpressure backlog (pending frames) rather than the ready queue.
	backlogged bool
}

// ReaderSpec builds the READER eactor: clients watch connection sockets
// (MsgWatch) and receive their inbound bytes as MsgData, then a final
// MsgClosed at EOF. Inbound chunks are forwarded through the channel's
// batch fast path: one SendBatch (one pool trip, one mbox CAS, one
// doorbell) per socket per invocation instead of one per chunk.
//
// In readiness-loop mode (NewSystemNetLoop) the READER drains only the
// sockets the loop queued — O(ready) per invocation instead of an
// O(watches) scan — so 10k+ mostly-idle connections cost neither
// goroutines nor drain cycles.
func (s *System) ReaderSpec(name string, worker int, channels ...string) core.Spec {
	if s.table.loop != nil {
		return s.loopReaderSpec(name, worker, channels...)
	}
	table := s.table
	var eps []*core.Endpoint
	var watches []*readWatch
	var scratch []byte
	var stage core.SendStage
	recvBufs, recvLens := core.BatchBufs(drainBatch, core.DefaultNodePayload)
	return core.Spec{
		Name:   name,
		Worker: worker,
		Init: func(self *core.Self) error {
			for _, ch := range channels {
				ep, err := self.Channel(ch)
				if err != nil {
					return err
				}
				eps = append(eps, ep)
			}
			return nil
		},
		Body: func(self *core.Self) {
			for _, ep := range eps {
				n, _ := self.RecvBatch(ep, recvBufs, recvLens)
				for i := 0; i < n; i++ {
					msg, err := ParseMsg(recvBufs[i][:recvLens[i]])
					if err != nil {
						continue
					}
					switch msg.Type {
					case MsgWatch:
						if sock, ok := table.Get(msg.Sock); ok && sock.conn != nil {
							sock.SetWake(self.Waker())
							sock.startReadPump()
							watches = append(watches, &readWatch{ep: ep, sock: sock})
						}
					case MsgUnwatch:
						for i, w := range watches {
							if w.sock.id == msg.Sock && w.ep == ep {
								watches = append(watches[:i], watches[i+1:]...)
								break
							}
						}
					}
				}
			}
			live := watches[:0]
			for _, w := range watches {
				if !s.drainSocket(self, w, &stage, &scratch) {
					continue // MsgClosed delivered; drop the watch
				}
				live = append(live, w)
			}
			watches = live
		},
	}
}

// drainSocket forwards up to drainBatch chunks from the socket's inbox
// as one batched send, returning false once the socket is finished
// (MsgClosed sent).
func (s *System) drainSocket(self *core.Self, w *readWatch, stage *core.SendStage, scratch *[]byte) bool {
	// Retry frames a previously full channel left behind, in order.
	for len(w.pending) > 0 {
		n, _ := w.ep.SendBatch(w.pending) //sendcheck:ok
		if n == 0 {
			return true // still backed up; chunks wait in the inbox
		}
		self.Progress()
		w.pending = w.pending[n:]
	}
	w.pending = nil
	// The READER is the wire ingress, so this is where sampled traces
	// are rooted: 1-in-SampleEvery inbound bursts get a fresh trace whose
	// root span (KindNetRead) covers the drain and the forwarding send.
	// The context is adopted into the actor scope so SendBatch stamps it
	// into the outgoing frames, then cleared — causality travels with the
	// message, not the READER.
	tr := self.Tracer()
	var netCtx trace.Ctx
	var drainStart time.Time
	if tr != nil && len(w.sock.inbox) > 0 {
		if ctx, ok := tr.MaybeRoot(&w.tick); ok {
			ctx.Span = tr.NextSpan()
			netCtx = ctx
			drainStart = time.Now()
		}
	}
	maxChunk := MaxData(w.ep.MaxPayload())
	stage.Reset()
	for stage.Len() < drainBatch {
		var chunk []byte
		select {
		case chunk = <-w.sock.inbox:
		default:
		}
		if chunk == nil {
			break
		}
		// Split oversized chunks to the channel's frame limit.
		for len(chunk) > 0 {
			emit := chunk
			if len(emit) > maxChunk {
				emit = chunk[:maxChunk]
			}
			frame, err := (Msg{Type: MsgData, Sock: w.sock.id, Data: emit}).AppendTo(stage.Slot())
			if err != nil {
				return true // cannot happen: emit fits the frame limit
			}
			stage.Push(frame)
			chunk = chunk[len(emit):]
		}
	}
	if stage.Len() > 0 {
		if netCtx.Traced() {
			self.TraceScope().Adopt(netCtx)
		}
		n, _ := w.ep.SendBatch(stage.Frames()) //sendcheck:ok
		if netCtx.Traced() {
			tr.Record(self.WorkerID(), trace.Span{
				TraceID: netCtx.TraceID, ID: netCtx.Span,
				Kind: trace.KindNetRead, Ref: w.sock.id,
				Start: drainStart.UnixNano(), Dur: int64(time.Since(drainStart)),
			})
			self.TraceScope().Clear()
		}
		if n > 0 {
			self.Progress()
		}
		// Stage slots are reused next round, so spilled frames get copies
		// (backpressure path only).
		for _, f := range stage.Frames()[n:] {
			w.pending = append(w.pending, append([]byte(nil), f...))
		}
		if len(w.pending) > 0 {
			return true
		}
	}
	if w.sock.eof.Load() && !w.sock.eofSent.Load() && len(w.sock.inbox) == 0 {
		if reply(w.ep, Msg{Type: MsgClosed, Sock: w.sock.id}, scratch) == nil {
			w.sock.eofSent.Store(true)
			self.Progress()
			return false
		}
	}
	return true
}

// WriterSpec builds the WRITER eactor: it writes MsgData payloads to
// their sockets, draining each channel through the batch fast path. It
// also honours MsgClose, so a sender can order a final frame and the
// close on one FIFO channel (handshake-failure teardown needs exactly
// that ordering).
func (s *System) WriterSpec(name string, worker int, channels ...string) core.Spec {
	table := s.table
	var eps []*core.Endpoint
	recvBufs, recvLens := core.BatchBufs(drainBatch, core.DefaultNodePayload)
	return core.Spec{
		Name:   name,
		Worker: worker,
		Init: func(self *core.Self) error {
			for _, ch := range channels {
				ep, err := self.Channel(ch)
				if err != nil {
					return err
				}
				eps = append(eps, ep)
			}
			return nil
		},
		Body: func(self *core.Self) {
			tr := self.Tracer()
			sc := self.TraceScope()
			for _, ep := range eps {
				n, _ := self.RecvBatch(ep, recvBufs, recvLens)
				for i := 0; i < n; i++ {
					msg, err := ParseMsg(recvBufs[i][:recvLens[i]])
					if err != nil {
						continue
					}
					switch msg.Type {
					case MsgData:
						// The terminal hop of a traced request: the span's
						// duration is the socket write syscall itself.
						start := tr.Begin(sc)
						_ = table.Write(msg.Sock, msg.Data) // peer EOF surfaces via READER
						tr.End(self.WorkerID(), sc, trace.KindNetWrite, msg.Sock, start)
					case MsgClose:
						_ = table.Close(msg.Sock)
					}
				}
			}
		},
	}
}

// CloserSpec builds the CLOSER eactor: it closes sockets on MsgClose.
func (s *System) CloserSpec(name string, worker int, channels ...string) core.Spec {
	table := s.table
	var eps []*core.Endpoint
	recvBuf := make([]byte, core.DefaultNodePayload)
	return core.Spec{
		Name:   name,
		Worker: worker,
		Init: func(self *core.Self) error {
			for _, ch := range channels {
				ep, err := self.Channel(ch)
				if err != nil {
					return err
				}
				eps = append(eps, ep)
			}
			return nil
		},
		Body: func(self *core.Self) {
			for _, ep := range eps {
				n, ok, err := ep.Recv(recvBuf)
				if err != nil || !ok {
					continue
				}
				msg, err := ParseMsg(recvBuf[:n])
				if err != nil || msg.Type != MsgClose {
					continue
				}
				_ = table.Close(msg.Sock)
				self.Progress()
			}
		},
	}
}
