// Package faults is the deterministic fault injector behind the chaos
// suite: a seed-driven schedule of failures pushed into the runtime's
// hook points (SGX enter/exit, seal/open, channel send/recv, worker
// invoke, POS sync). Stress-SGX-style testing only earns trust when a
// failing run can be replayed, so every decision is a pure function of
// (seed, site, per-site operation index) — the nth send always gets the
// same verdict for the same seed, regardless of thread interleaving or
// wall-clock time. Re-running with the printed seed reproduces the
// identical per-site fault schedule.
//
// The injector is dependency-free; the subsystems that consume it (sgx,
// core, pos) each accept an *Injector and treat nil as "faults off",
// so production paths pay one nil check.
package faults

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Site identifies a hook point in the runtime.
type Site uint8

// Hook sites. Each site keeps its own operation counter, so schedules
// at different sites are independent.
const (
	// SiteEnter is an enclave entry (EENTER) in sgx.Context.
	SiteEnter Site = iota
	// SiteExit is an enclave exit (EEXIT) in sgx.Context.
	SiteExit
	// SiteSeal covers sgx.Enclave.Seal and the channel-layer payload
	// seal of encrypted endpoints.
	SiteSeal
	// SiteOpen covers sgx.Enclave.Unseal and the channel-layer payload
	// open.
	SiteOpen
	// SiteSend is a core Endpoint send (Send/SendNode/SendBatch).
	SiteSend
	// SiteRecv is a core Endpoint receive.
	SiteRecv
	// SiteInvoke is one eactor body invocation.
	SiteInvoke
	// SitePosSync is a POS store sync to its backing file.
	SitePosSync

	numSites
)

var siteNames = [numSites]string{
	SiteEnter: "enter", SiteExit: "exit", SiteSeal: "seal",
	SiteOpen: "open", SiteSend: "send", SiteRecv: "recv",
	SiteInvoke: "invoke", SitePosSync: "pos-sync",
}

// String names the site.
func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// Class is the kind of fault injected at a site.
type Class uint8

// Fault classes. Which classes are meaningful at which site is up to
// the consuming subsystem; an action whose class it does not understand
// is ignored.
const (
	// None is the zero action: no fault.
	None Class = iota
	// SealCorrupt flips a byte of the sealed blob, so the peer's
	// authenticated open fails and the message/state is discarded.
	SealCorrupt
	// SendFail rejects the send as if the mailbox were full.
	SendFail
	// EPCSpike transiently inflates EPC pressure, forcing evictions.
	EPCSpike
	// DoorbellDrop suppresses the consumer worker's doorbell ring, so
	// delivery waits for the idle-sleep poll.
	DoorbellDrop
	// Delay stalls the operation by the rule's Delay.
	Delay
	// SyncFail fails a POS sync with pos.ErrInjectedSync.
	SyncFail

	numClasses
)

var classNames = [numClasses]string{
	None: "none", SealCorrupt: "seal-corrupt", SendFail: "send-fail",
	EPCSpike: "epc-spike", DoorbellDrop: "doorbell-drop",
	Delay: "delay", SyncFail: "sync-fail",
}

// String names the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Rule arms one fault class at one site with a per-operation rate.
type Rule struct {
	// Site is the hook point the rule applies to.
	Site Site
	// Class is the injected fault.
	Class Class
	// Rate is the per-operation probability in [0, 1].
	Rate float64
	// Delay is the stall length for Delay-class rules.
	Delay time.Duration
	// Pages is the transient page pressure for EPCSpike rules.
	Pages int
}

// Config describes a reproducible fault schedule.
type Config struct {
	// Seed drives the schedule; the same seed and rules reproduce the
	// identical per-site decision sequence.
	Seed uint64
	// Rules arm the fault classes. At most one rule fires per
	// operation: the first matching rule in declaration order wins.
	Rules []Rule
}

// Action is the injector's verdict for one operation.
type Action struct {
	// Class is None when no fault fires.
	Class Class
	// Delay is the stall for Delay-class actions.
	Delay time.Duration
	// Pages is the page pressure for EPCSpike actions.
	Pages int
}

type compiledRule struct {
	class     Class
	threshold uint64 // fire when hash < threshold
	delay     time.Duration
	pages     int
	salt      uint64 // mixes the rule index into the hash stream
}

// Injector evaluates a Config. It is safe for concurrent use; a nil
// *Injector is a no-op whose At always returns the zero Action.
type Injector struct {
	seed  uint64
	rules [numSites][]compiledRule
	cfg   Config

	// seq assigns each site its operation index. Padded out to a cache
	// line each so concurrent hot paths do not false-share.
	seq [numSites]paddedCounter

	injected atomic.Uint64
	byClass  [numClasses]atomic.Uint64

	// observer, when set, is called for every injected fault (used by
	// the core runtime to bump eactors_faults_injected and trace the
	// event). It must be set before the injector is shared.
	observer func(Site, Class)
}

type paddedCounter struct {
	n atomic.Uint64
	_ [56]byte
}

// New compiles a Config. Rates are clamped to [0, 1].
func New(cfg Config) *Injector {
	inj := &Injector{seed: cfg.Seed, cfg: cfg}
	for i, r := range cfg.Rules {
		if r.Site >= numSites || r.Class == None || r.Class >= numClasses {
			continue
		}
		rate := r.Rate
		if rate < 0 {
			rate = 0
		}
		if rate > 1 {
			rate = 1
		}
		var threshold uint64
		if rate >= 1 {
			threshold = ^uint64(0)
		} else {
			threshold = uint64(rate * float64(1<<63) * 2)
		}
		inj.rules[r.Site] = append(inj.rules[r.Site], compiledRule{
			class:     r.Class,
			threshold: threshold,
			delay:     r.Delay,
			pages:     r.Pages,
			salt:      splitmix64(uint64(i+1) * 0x9E3779B97F4A7C15),
		})
	}
	return inj
}

// SetObserver installs the per-injection callback. Call before sharing
// the injector; the callback must be safe for concurrent use.
func (inj *Injector) SetObserver(fn func(Site, Class)) {
	if inj != nil {
		inj.observer = fn
	}
}

// At assigns the next operation index at site and returns the scheduled
// action. Nil-safe.
func (inj *Injector) At(site Site) Action {
	if inj == nil || site >= numSites {
		return Action{}
	}
	rules := inj.rules[site]
	if len(rules) == 0 {
		return Action{}
	}
	n := inj.seq[site].n.Add(1) - 1
	return inj.decide(site, n)
}

// decide is the pure schedule function: the verdict for operation n at
// site. At routes through it; tests call it directly to compare
// schedules across runs.
func (inj *Injector) decide(site Site, n uint64) Action {
	for _, r := range inj.rules[site] {
		h := splitmix64(inj.seed ^ (uint64(site)+1)<<56 ^ r.salt ^ splitmix64(n))
		if h < r.threshold {
			inj.injected.Add(1)
			inj.byClass[r.class].Add(1)
			if inj.observer != nil {
				inj.observer(site, r.class)
			}
			return Action{Class: r.class, Delay: r.delay, Pages: r.pages}
		}
	}
	return Action{}
}

// Schedule returns the verdicts for the first n operations at site
// without consuming operation indices or counting injections — the
// reproducibility probe used by tests and failure reports.
func (inj *Injector) Schedule(site Site, n int) []Class {
	if inj == nil || site >= numSites {
		return nil
	}
	out := make([]Class, n)
	for i := range out {
		out[i] = inj.peek(site, uint64(i))
	}
	return out
}

// peek is decide without side effects.
func (inj *Injector) peek(site Site, n uint64) Class {
	for _, r := range inj.rules[site] {
		h := splitmix64(inj.seed ^ (uint64(site)+1)<<56 ^ r.salt ^ splitmix64(n))
		if h < r.threshold {
			return r.class
		}
	}
	return None
}

// Seed returns the schedule seed.
func (inj *Injector) Seed() uint64 {
	if inj == nil {
		return 0
	}
	return inj.seed
}

// Injected returns the total number of faults injected so far.
func (inj *Injector) Injected() uint64 {
	if inj == nil {
		return 0
	}
	return inj.injected.Load()
}

// InjectedByClass returns the per-class injection counts, keyed by
// Class.String.
func (inj *Injector) InjectedByClass() map[string]uint64 {
	if inj == nil {
		return nil
	}
	out := make(map[string]uint64)
	for c := Class(1); c < numClasses; c++ {
		if n := inj.byClass[c].Load(); n > 0 {
			out[c.String()] = n
		}
	}
	return out
}

// Ops returns how many operations site has evaluated.
func (inj *Injector) Ops(site Site) uint64 {
	if inj == nil || site >= numSites {
		return 0
	}
	return inj.seq[site].n.Load()
}

// String renders the schedule for failure reports: seed, armed rules
// and injection counts, one line.
func (inj *Injector) String() string {
	if inj == nil {
		return "faults: off"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "faults: seed=%d", inj.seed)
	for _, r := range inj.cfg.Rules {
		fmt.Fprintf(&b, " %s@%s=%.3g", r.Class, r.Site, r.Rate)
	}
	counts := inj.InjectedByClass()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " injected[%s]=%d", k, counts[k])
	}
	return b.String()
}

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mixer,
// cheap enough for per-operation use.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
