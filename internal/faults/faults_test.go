package faults

import (
	"sync"
	"testing"
	"time"
)

func chaosRules() []Rule {
	return []Rule{
		{Site: SiteSeal, Class: SealCorrupt, Rate: 0.05},
		{Site: SiteSend, Class: SendFail, Rate: 0.1},
		{Site: SiteSend, Class: DoorbellDrop, Rate: 0.05},
		{Site: SiteEnter, Class: EPCSpike, Rate: 0.02, Pages: 64},
		{Site: SiteExit, Class: Delay, Rate: 0.01, Delay: 10 * time.Microsecond},
	}
}

// TestScheduleReproducible: the same seed yields the identical per-site
// schedule across two independent injectors — the property the chaos
// suite's seed-reproduction instructions rely on.
func TestScheduleReproducible(t *testing.T) {
	const n = 4096
	a := New(Config{Seed: 42, Rules: chaosRules()})
	b := New(Config{Seed: 42, Rules: chaosRules()})
	for site := Site(0); site < numSites; site++ {
		sa, sb := a.Schedule(site, n), b.Schedule(site, n)
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("site %s op %d: %s vs %s", site, i, sa[i], sb[i])
			}
		}
	}
	// And At (the consuming API) follows the same schedule.
	want := a.Schedule(SiteSend, n)
	got := make([]Class, n)
	for i := range got {
		got[i] = b.At(SiteSend).Class
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("At diverged from Schedule at op %d: %s vs %s", i, got[i], want[i])
		}
	}
}

// TestSeedsDiffer: different seeds produce different schedules.
func TestSeedsDiffer(t *testing.T) {
	const n = 4096
	a := New(Config{Seed: 1, Rules: chaosRules()})
	b := New(Config{Seed: 2, Rules: chaosRules()})
	same := 0
	sa, sb := a.Schedule(SiteSend, n), b.Schedule(SiteSend, n)
	for i := range sa {
		if sa[i] == sb[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("seeds 1 and 2 produced identical send schedules")
	}
}

// TestRatesApproximate: a 10% rule fires roughly 10% of the time.
func TestRatesApproximate(t *testing.T) {
	inj := New(Config{Seed: 7, Rules: []Rule{{Site: SiteSend, Class: SendFail, Rate: 0.1}}})
	const n = 100000
	fired := 0
	for i := 0; i < n; i++ {
		if inj.At(SiteSend).Class == SendFail {
			fired++
		}
	}
	if fired < n/20 || fired > n/5 {
		t.Fatalf("10%% rule fired %d/%d times", fired, n)
	}
	if inj.Injected() != uint64(fired) {
		t.Fatalf("Injected = %d, want %d", inj.Injected(), fired)
	}
	if inj.InjectedByClass()["send-fail"] != uint64(fired) {
		t.Fatalf("InjectedByClass = %v", inj.InjectedByClass())
	}
	if inj.Ops(SiteSend) != n {
		t.Fatalf("Ops = %d", inj.Ops(SiteSend))
	}
}

// TestNilInjector: the nil injector is a total no-op.
func TestNilInjector(t *testing.T) {
	var inj *Injector
	if a := inj.At(SiteSend); a.Class != None {
		t.Fatalf("nil At = %+v", a)
	}
	if inj.Injected() != 0 || inj.Seed() != 0 || inj.Ops(SiteSend) != 0 {
		t.Fatal("nil injector leaked state")
	}
	if inj.String() != "faults: off" {
		t.Fatalf("nil String = %q", inj.String())
	}
	inj.SetObserver(func(Site, Class) {}) // must not panic
}

// TestObserver: every injection reaches the observer.
func TestObserver(t *testing.T) {
	inj := New(Config{Seed: 3, Rules: []Rule{{Site: SiteSeal, Class: SealCorrupt, Rate: 1}}})
	var calls int
	inj.SetObserver(func(s Site, c Class) {
		if s != SiteSeal || c != SealCorrupt {
			t.Fatalf("observer got %s/%s", s, c)
		}
		calls++
	})
	for i := 0; i < 10; i++ {
		if inj.At(SiteSeal).Class != SealCorrupt {
			t.Fatal("rate-1 rule did not fire")
		}
	}
	if calls != 10 {
		t.Fatalf("observer calls = %d", calls)
	}
}

// TestConcurrentAt: At is race-clean and never loses operations.
func TestConcurrentAt(t *testing.T) {
	inj := New(Config{Seed: 9, Rules: chaosRules()})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				inj.At(SiteSend)
			}
		}()
	}
	wg.Wait()
	if inj.Ops(SiteSend) != workers*per {
		t.Fatalf("Ops = %d, want %d", inj.Ops(SiteSend), workers*per)
	}
}
