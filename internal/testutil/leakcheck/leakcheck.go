// Package leakcheck verifies that a test binary exits without leaked
// goroutines. It is a zero-dependency sibling of goleak: after m.Run()
// it snapshots every goroutine stack (runtime.Stack with all=true),
// filters the test harness's own machinery, and fails the binary if
// anything else survives a short grace window — pumps that were never
// stopped, pollers that missed their quit signal, timers still parked.
//
// Wire it into a package with:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// The grace window matters: goroutines legitimately take a few
// scheduler rounds to observe a close and unwind, so the check retries
// until the set is empty or the deadline passes. Only the steady state
// counts.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// grace is how long goroutines get to unwind after the last test.
const grace = 5 * time.Second

// benign marks goroutines that belong to the test harness or the
// runtime rather than to the code under test. Substring match against
// the whole stack block.
var benign = []string{
	"testing.Main(",
	"testing.(*M).",
	"testing.(*T).",
	"testing.tRunner",
	"testing.runTests",
	"testing.runFuzzing",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime.ReadTrace",
	"runtime/pprof.",
	"created by runtime",
	"leakcheck.stacks", // ourselves
}

// stacks returns one stack block per live goroutine, excluding the
// calling goroutine (always the first block in runtime.Stack output).
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	blocks := strings.Split(string(buf), "\n\n")
	if len(blocks) > 0 {
		blocks = blocks[1:] // the goroutine running this check
	}
	return blocks
}

func isBenign(block string) bool {
	for _, b := range benign {
		if strings.Contains(block, b) {
			return true
		}
	}
	return false
}

// Leaked returns the stacks of goroutines still alive after the grace
// window that are not test-harness machinery. Empty means clean.
func Leaked(grace time.Duration) []string {
	deadline := time.Now().Add(grace)
	var leaked []string
	for {
		leaked = leaked[:0]
		for _, block := range stacks() {
			if strings.TrimSpace(block) == "" || isBenign(block) {
				continue
			}
			leaked = append(leaked, block)
		}
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Main runs the package's tests and then the leak check, exiting with a
// failure code if passing tests left goroutines behind. A failing run
// keeps its own exit code — leak output would only bury the real error.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := Leaked(grace); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) leaked by this package's tests:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}
