package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestMain(m *testing.M) { Main(m) }

func TestCleanWhenNothingLeaks(t *testing.T) {
	if leaked := Leaked(100 * time.Millisecond); len(leaked) != 0 {
		t.Fatalf("clean state reported %d leaks:\n%s", len(leaked), strings.Join(leaked, "\n\n"))
	}
}

func TestDetectsLeakedGoroutine(t *testing.T) {
	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-block
	}()
	leaked := Leaked(50 * time.Millisecond)
	close(block) // unwind before TestMain's final check
	<-done
	if len(leaked) == 0 {
		t.Fatal("parked goroutine not reported")
	}
	found := false
	for _, b := range leaked {
		if strings.Contains(b, "TestDetectsLeakedGoroutine") {
			found = true
		}
	}
	if !found {
		t.Fatalf("leak report missing the culprit:\n%s", strings.Join(leaked, "\n\n"))
	}
}

func TestGraceWindowAbsorbsUnwinding(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(50 * time.Millisecond) // unwinds within the grace window
	}()
	if leaked := Leaked(2 * time.Second); len(leaked) != 0 {
		t.Fatalf("transient goroutine reported as leak:\n%s", strings.Join(leaked, "\n\n"))
	}
	<-done
}
