package smc

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/sgx"
)

// Ring wire format: a 4-byte little-endian round tag followed by the
// masked vector. The tag is what makes the ring loss-tolerant — without
// it, one dropped or corrupted message (an injected fault, or an
// adversarial runtime discarding a node) would stall rounds forever:
//
//   - the first party retransmits the current round (identical tag and
//     mask, so recomputation is idempotent) when it does not come back
//     within RetransmitAfter;
//   - inner parties process each tag once, answer a duplicate tag by
//     re-forwarding their cached output (so a retransmission propagates
//     past parties that already saw the round), and drop tags older
//     than the last processed one;
//   - the first party drops any tag but the current round's.
const ringTagBytes = 4

// EAService is the EActors deployment of the secure-sum protocol
// (Figure 9a): each party is an eactor in its own enclave with its own
// worker; ring links are encrypted channels. The first party runs
// rounds back to back (closed loop), so the counter rate is the
// service's request throughput.
type EAService struct {
	rt     *core.Runtime
	opts   Options
	rounds atomic.Uint64

	mu      sync.Mutex
	lastSum []uint32
}

// StartEA builds and starts the EActors secure-sum ring.
func StartEA(opts Options) (*EAService, error) {
	if err := opts.normalise(); err != nil {
		return nil, err
	}
	svc := &EAService{opts: opts}

	k := opts.Parties
	payload := ringTagBytes + 4*opts.Dim + 64
	if payload < 256 {
		payload = 256
	}
	cfg := core.Config{
		NodePayload: payload,
		PoolNodes:   4 * k,
		Workers:     make([]core.WorkerSpec, k),
		Faults:      opts.Faults,
	}
	for p := 0; p < k; p++ {
		cfg.Enclaves = append(cfg.Enclaves, core.EnclaveSpec{Name: enclaveName(p)})
	}
	// Ring links: ring-p connects party p to party (p+1)%k. Endpoints in
	// different enclaves, so the runtime encrypts them transparently.
	for p := 0; p < k; p++ {
		cfg.Channels = append(cfg.Channels, core.ChannelSpec{
			Name: ringName(p),
			A:    partyName(p),
			B:    partyName((p + 1) % k),
			// Two in-flight rounds at most; smallest legal capacity.
			Capacity: 4,
		})
	}
	for p := 0; p < k; p++ {
		cfg.Actors = append(cfg.Actors, svc.partySpec(p))
	}

	rt, err := core.NewRuntime(opts.Platform, cfg)
	if err != nil {
		return nil, err
	}
	svc.rt = rt
	if err := rt.Start(); err != nil {
		rt.Stop()
		return nil, err
	}
	return svc, nil
}

func enclaveName(p int) string { return fmt.Sprintf("smc-party-%d", p) }
func partyName(p int) string   { return fmt.Sprintf("party-%d", p) }
func ringName(p int) string    { return fmt.Sprintf("ring-%d", p) }

// partyState is one party eactor's private state.
type partyState struct {
	secret []uint32
	rnd    []uint32 // first party only
	m      []uint32

	// buf holds the party's current outbound message (tag || vector) —
	// retained after sending so it can be retransmitted verbatim; rbuf
	// is the separate inbound staging buffer.
	buf  []byte
	rbuf []byte

	inRound bool      // first party: a round is in flight
	round   uint32    // first: current round tag; inner: last processed tag
	sentAt  time.Time // first party: last (re)transmission
	pending bool      // inner party: buf awaits a (re)send on a full channel
}

// partySpec builds party p's eactor.
func (svc *EAService) partySpec(p int) core.Spec {
	opts := svc.opts
	k := opts.Parties
	first := p == 0
	st := &partyState{
		secret: initialSecret(p, opts.Dim),
		m:      make([]uint32, opts.Dim),
		buf:    make([]byte, ringTagBytes+4*opts.Dim),
		rbuf:   make([]byte, ringTagBytes+4*opts.Dim),
	}
	if first {
		st.rnd = make([]uint32, opts.Dim)
	}
	var in, out *core.Endpoint
	var enclave *sgx.Enclave
	var costs *sgx.CostModel
	return core.Spec{
		Name:    partyName(p),
		Enclave: enclaveName(p),
		Worker:  p,
		State:   st,
		Init: func(self *core.Self) error {
			in = self.MustChannel(ringName((p + k - 1) % k))
			out = self.MustChannel(ringName(p))
			enclave = self.Enclave()
			costs = self.Runtime().Platform().Costs()
			return nil
		},
		Body: func(self *core.Self) {
			if first {
				svc.firstPartyBody(self, st, in, out, enclave, costs)
			} else {
				svc.innerPartyBody(self, st, in, out, costs)
			}
		},
	}
}

// firstPartyBody starts rounds and unmasks results (party P1 of the
// paper), retransmitting a round that does not come back in time.
func (svc *EAService) firstPartyBody(self *core.Self, st *partyState, in, out *core.Endpoint, enclave *sgx.Enclave, costs *sgx.CostModel) {
	if !st.inRound {
		// Refill the mask from the trusted RNG — the cost the paper
		// identifies as the plain protocol's bottleneck.
		enclave.ReadRandUint32s(st.rnd)
		maskVector(st.m, st.secret, st.rnd)
		binary.LittleEndian.PutUint32(st.buf, st.round+1)
		encodeVector(st.buf[ringTagBytes:], st.m)
		if out.Send(st.buf) != nil {
			return // retry next invocation (channel full or injected drop)
		}
		st.round++
		st.inRound = true
		st.sentAt = time.Now()
		self.Progress()
		return
	}
	n, ok, err := in.Recv(st.rbuf[:cap(st.rbuf)])
	if ok {
		// A corrupted seal (err != nil) consumes the message; recovery
		// is the retransmission below, like any other loss.
		if err == nil && n >= ringTagBytes &&
			binary.LittleEndian.Uint32(st.rbuf) == st.round &&
			decodeVector(st.m, st.rbuf[ringTagBytes:n]) == nil {
			sum := make([]uint32, len(st.m))
			unmask(sum, st.m, st.rnd)
			svc.mu.Lock()
			svc.lastSum = sum
			svc.mu.Unlock()
			if svc.opts.Dynamic {
				updateSecret(st.secret, costs)
			}
			svc.rounds.Add(1)
			st.inRound = false
		}
		// Anything else — stale tag, corrupt, short — is dropped.
		self.Progress()
		return
	}
	if time.Since(st.sentAt) >= svc.opts.RetransmitAfter {
		// st.buf still holds the round verbatim (tag and mask), so a
		// retransmission is idempotent at every hop.
		if out.Send(st.buf) == nil {
			self.Progress()
		}
		st.sentAt = time.Now()
	}
}

// innerPartyBody adds this party's secret and forwards the message.
// Each round tag is processed exactly once: a duplicate tag re-forwards
// the cached output (propagating a retransmission past this hop), an
// older tag is dropped.
func (svc *EAService) innerPartyBody(self *core.Self, st *partyState, in, out *core.Endpoint, costs *sgx.CostModel) {
	if st.pending {
		// An earlier forward hit a full channel or injected drop; the
		// ring is ordered, so flush it before consuming new input.
		if out.Send(st.buf) != nil {
			return
		}
		st.pending = false
		self.Progress()
	}
	n, ok, err := in.Recv(st.rbuf[:cap(st.rbuf)])
	if !ok {
		return
	}
	self.Progress()
	if err != nil || n < ringTagBytes {
		return // corrupted or short: the first party will retransmit
	}
	tag := binary.LittleEndian.Uint32(st.rbuf)
	if tag == st.round {
		// Duplicate of the round we already processed: our cached
		// output in st.buf is the correct answer; re-forward it so the
		// retransmission reaches the parties downstream of us.
		if out.Send(st.buf) != nil {
			st.pending = true
		}
		return
	}
	if tag < st.round || decodeVector(st.m, st.rbuf[ringTagBytes:n]) != nil {
		return // stale round or torn payload: drop
	}
	addSecret(st.m, st.secret)
	binary.LittleEndian.PutUint32(st.buf, tag)
	encodeVector(st.buf[ringTagBytes:], st.m)
	st.round = tag
	if out.Send(st.buf) != nil {
		st.pending = true
	}
	// The secret update is per processed tag, so retransmissions never
	// double-apply it and the dynamic case stays consistent under loss.
	if svc.opts.Dynamic {
		updateSecret(st.secret, costs)
	}
}

// Rounds returns the number of completed secure sums.
func (svc *EAService) Rounds() uint64 { return svc.rounds.Load() }

// LastSum returns a copy of the most recent result vector.
func (svc *EAService) LastSum() []uint32 {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	out := make([]uint32, len(svc.lastSum))
	copy(out, svc.lastSum)
	return out
}

// WaitRounds blocks until at least n rounds have completed.
func (svc *EAService) WaitRounds(n uint64) {
	for svc.rounds.Load() < n {
		runtime.Gosched()
	}
}

// Runtime exposes the underlying runtime (stats, tests).
func (svc *EAService) Runtime() *core.Runtime { return svc.rt }

// Stop shuts the ring down.
func (svc *EAService) Stop() { svc.rt.Stop() }
