package smc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/sgx"
)

// EAService is the EActors deployment of the secure-sum protocol
// (Figure 9a): each party is an eactor in its own enclave with its own
// worker; ring links are encrypted channels. The first party runs
// rounds back to back (closed loop), so the counter rate is the
// service's request throughput.
type EAService struct {
	rt     *core.Runtime
	opts   Options
	rounds atomic.Uint64

	mu      sync.Mutex
	lastSum []uint32
}

// StartEA builds and starts the EActors secure-sum ring.
func StartEA(opts Options) (*EAService, error) {
	if err := opts.normalise(); err != nil {
		return nil, err
	}
	svc := &EAService{opts: opts}

	k := opts.Parties
	payload := 4*opts.Dim + 64
	if payload < 256 {
		payload = 256
	}
	cfg := core.Config{
		NodePayload: payload,
		PoolNodes:   4 * k,
		Workers:     make([]core.WorkerSpec, k),
	}
	for p := 0; p < k; p++ {
		cfg.Enclaves = append(cfg.Enclaves, core.EnclaveSpec{Name: enclaveName(p)})
	}
	// Ring links: ring-p connects party p to party (p+1)%k. Endpoints in
	// different enclaves, so the runtime encrypts them transparently.
	for p := 0; p < k; p++ {
		cfg.Channels = append(cfg.Channels, core.ChannelSpec{
			Name: ringName(p),
			A:    partyName(p),
			B:    partyName((p + 1) % k),
			// Two in-flight rounds at most; smallest legal capacity.
			Capacity: 4,
		})
	}
	for p := 0; p < k; p++ {
		cfg.Actors = append(cfg.Actors, svc.partySpec(p))
	}

	rt, err := core.NewRuntime(opts.Platform, cfg)
	if err != nil {
		return nil, err
	}
	svc.rt = rt
	if err := rt.Start(); err != nil {
		rt.Stop()
		return nil, err
	}
	return svc, nil
}

func enclaveName(p int) string { return fmt.Sprintf("smc-party-%d", p) }
func partyName(p int) string   { return fmt.Sprintf("party-%d", p) }
func ringName(p int) string    { return fmt.Sprintf("ring-%d", p) }

// partyState is one party eactor's private state.
type partyState struct {
	secret  []uint32
	rnd     []uint32 // first party only
	m       []uint32
	buf     []byte
	inRound bool // first party only
}

// partySpec builds party p's eactor.
func (svc *EAService) partySpec(p int) core.Spec {
	opts := svc.opts
	k := opts.Parties
	first := p == 0
	st := &partyState{
		secret: initialSecret(p, opts.Dim),
		m:      make([]uint32, opts.Dim),
		buf:    make([]byte, 4*opts.Dim),
	}
	if first {
		st.rnd = make([]uint32, opts.Dim)
	}
	var in, out *core.Endpoint
	var enclave *sgx.Enclave
	var costs *sgx.CostModel
	return core.Spec{
		Name:    partyName(p),
		Enclave: enclaveName(p),
		Worker:  p,
		State:   st,
		Init: func(self *core.Self) error {
			in = self.MustChannel(ringName((p + k - 1) % k))
			out = self.MustChannel(ringName(p))
			enclave = self.Enclave()
			costs = self.Runtime().Platform().Costs()
			return nil
		},
		Body: func(self *core.Self) {
			if first {
				svc.firstPartyBody(self, st, in, out, enclave, costs)
			} else {
				svc.innerPartyBody(self, st, in, out, costs)
			}
		},
	}
}

// firstPartyBody starts rounds and unmasks results (party P1 of the
// paper).
func (svc *EAService) firstPartyBody(self *core.Self, st *partyState, in, out *core.Endpoint, enclave *sgx.Enclave, costs *sgx.CostModel) {
	if !st.inRound {
		// Refill the mask from the trusted RNG — the cost the paper
		// identifies as the plain protocol's bottleneck.
		enclave.ReadRandUint32s(st.rnd)
		maskVector(st.m, st.secret, st.rnd)
		encodeVector(st.buf, st.m)
		if out.Send(st.buf) != nil {
			return // retry next invocation (channel full)
		}
		st.inRound = true
		self.Progress()
		return
	}
	n, ok, err := in.Recv(st.buf[:cap(st.buf)])
	if err != nil || !ok {
		return
	}
	if decodeVector(st.m, st.buf[:n]) != nil {
		return
	}
	sum := make([]uint32, len(st.m))
	unmask(sum, st.m, st.rnd)
	svc.mu.Lock()
	svc.lastSum = sum
	svc.mu.Unlock()
	if svc.opts.Dynamic {
		updateSecret(st.secret, costs)
	}
	svc.rounds.Add(1)
	st.inRound = false
	self.Progress()
}

// innerPartyBody adds this party's secret and forwards the message.
func (svc *EAService) innerPartyBody(self *core.Self, st *partyState, in, out *core.Endpoint, costs *sgx.CostModel) {
	n, ok, err := in.Recv(st.buf[:cap(st.buf)])
	if err != nil || !ok {
		return
	}
	if decodeVector(st.m, st.buf[:n]) != nil {
		return
	}
	addSecret(st.m, st.secret)
	encodeVector(st.buf, st.m)
	// The ring capacity covers all in-flight rounds, so a full channel
	// cannot occur while a round is outstanding; treat it as fatal drop.
	_ = out.Send(st.buf)
	if svc.opts.Dynamic {
		updateSecret(st.secret, costs)
	}
	self.Progress()
}

// Rounds returns the number of completed secure sums.
func (svc *EAService) Rounds() uint64 { return svc.rounds.Load() }

// LastSum returns a copy of the most recent result vector.
func (svc *EAService) LastSum() []uint32 {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	out := make([]uint32, len(svc.lastSum))
	copy(out, svc.lastSum)
	return out
}

// WaitRounds blocks until at least n rounds have completed.
func (svc *EAService) WaitRounds(n uint64) {
	for svc.rounds.Load() < n {
		runtime.Gosched()
	}
}

// Runtime exposes the underlying runtime (stats, tests).
func (svc *EAService) Runtime() *core.Runtime { return svc.rt }

// Stop shuts the ring down.
func (svc *EAService) Stop() { svc.rt.Stop() }
