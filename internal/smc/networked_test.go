package smc

import (
	"testing"
)

func TestNetworkedRoundCorrectness(t *testing.T) {
	for _, parties := range []int{2, 3, 5} {
		svc, err := StartNetworked(Options{Parties: parties, Dim: 16, Platform: zeroPlatform()})
		if err != nil {
			t.Fatalf("StartNetworked(%d): %v", parties, err)
		}
		want := ExpectedSum(parties, 16, 1, false)
		for r := 0; r < 5; r++ {
			sum, err := svc.Round()
			if err != nil {
				t.Fatalf("round %d: %v", r, err)
			}
			if !equalVec(sum, want) {
				t.Fatalf("parties=%d round=%d sum = %v, want %v", parties, r, sum[:4], want[:4])
			}
		}
		svc.Close()
	}
}

func TestNetworkedDynamic(t *testing.T) {
	svc, err := StartNetworked(Options{Parties: 3, Dim: 8, Dynamic: true, Platform: zeroPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for r := 1; r <= 4; r++ {
		sum, err := svc.Round()
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if !equalVec(sum, ExpectedSum(3, 8, r, true)) {
			t.Fatalf("dynamic round %d mismatch", r)
		}
	}
}

func TestNetworkedCloseIdempotent(t *testing.T) {
	svc, err := StartNetworked(Options{Parties: 2, Dim: 4, Platform: zeroPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	svc.Close()
	if _, err := svc.Round(); err == nil {
		t.Fatal("Round succeeded after Close")
	}
}
