package smc

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/eactors/eactors-go/internal/ecrypto"
)

// NetworkedService is the classical distributed deployment of the
// secure-sum protocol that the paper's use case replaces (Section 5.2:
// "Usually the protocol targets a distributed setting where the
// individual participants exchange messages over the network. With the
// support of trusted execution all participants can be represented by
// enclaves that are co-located on a single machine. This way costly
// network-based communication between the participants can be
// avoided.").
//
// Each party is a goroutine with a TCP connection to its ring
// successor; messages are AES-GCM protected exactly like the EActors
// channels, so the comparison isolates the transport: kernel TCP
// round trips versus in-memory mboxes.
type NetworkedService struct {
	opts    Options
	parties []*netParty
	wg      sync.WaitGroup
	stopped bool

	mu      sync.Mutex
	lastSum []uint32
}

type netParty struct {
	index  int
	secret []uint32
	rnd    []uint32 // first party only
	m      []uint32
	plain  []byte

	in, out    net.Conn
	recv, send *ecrypto.Cipher
}

// StartNetworked builds the TCP ring (over loopback) and returns a
// service whose Round drives one secure sum through it.
func StartNetworked(opts Options) (*NetworkedService, error) {
	if err := opts.normalise(); err != nil {
		return nil, err
	}
	k := opts.Parties
	svc := &NetworkedService{
		opts:    opts,
		parties: make([]*netParty, k),
	}
	for p := 0; p < k; p++ {
		svc.parties[p] = &netParty{
			index:  p,
			secret: initialSecret(p, opts.Dim),
			m:      make([]uint32, opts.Dim),
			plain:  make([]byte, 4*opts.Dim),
		}
	}
	svc.parties[0].rnd = make([]uint32, opts.Dim)

	// Ring links: party p dials party (p+1)%k.
	listeners := make([]net.Listener, k)
	for p := 0; p < k; p++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			svc.Close()
			return nil, err
		}
		listeners[p] = lis
	}
	for p := 0; p < k; p++ {
		next := (p + 1) % k
		accepted := make(chan net.Conn, 1)
		errCh := make(chan error, 1)
		go func(lis net.Listener) {
			conn, err := lis.Accept()
			if err != nil {
				errCh <- err
				return
			}
			accepted <- conn
		}(listeners[next])
		out, err := net.Dial("tcp", listeners[next].Addr().String())
		if err != nil {
			svc.Close()
			return nil, err
		}
		svc.parties[p].out = out
		select {
		case conn := <-accepted:
			svc.parties[next].in = conn
		case err := <-errCh:
			svc.Close()
			return nil, err
		}

		// Link keys: the distributed setting would run a TLS-style
		// handshake; the comparison only needs equivalent record
		// protection, so derive a per-link key directly.
		var linkKey [ecrypto.KeySize]byte
		linkKey[0] = byte(p)
		linkKey[1] = byte(next)
		linkKey = ecrypto.DeriveKey(linkKey, "smc-network-link")
		send, err := ecrypto.NewCipher(linkKey, 0)
		if err != nil {
			svc.Close()
			return nil, err
		}
		recv, err := ecrypto.NewCipher(linkKey, 1)
		if err != nil {
			svc.Close()
			return nil, err
		}
		svc.parties[p].send = send
		svc.parties[next].recv = recv
	}
	for _, lis := range listeners {
		_ = lis.Close()
	}

	// Inner parties serve forever: receive, add, forward.
	for p := 1; p < k; p++ {
		svc.wg.Add(1)
		go svc.serveInner(svc.parties[p])
	}
	return svc, nil
}

// writeFrame sends a length-prefixed sealed vector.
func writeFrame(conn net.Conn, cipher *ecrypto.Cipher, plain []byte) error {
	blob := cipher.Seal(nil, plain, nil)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(blob)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(blob)
	return err
}

// readFrame receives and opens one frame.
func readFrame(conn net.Conn, cipher *ecrypto.Cipher, dst []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > 64<<20 {
		return nil, fmt.Errorf("smc: frame of %d bytes", n)
	}
	blob := make([]byte, n)
	if _, err := io.ReadFull(conn, blob); err != nil {
		return nil, err
	}
	return cipher.Open(dst[:0], blob, nil)
}

func (s *NetworkedService) serveInner(p *netParty) {
	defer s.wg.Done()
	for {
		plain, err := readFrame(p.in, p.recv, p.plain)
		if err != nil {
			return // ring torn down
		}
		if decodeVector(p.m, plain) != nil {
			return
		}
		addSecret(p.m, p.secret)
		encodeVector(p.plain, p.m)
		if err := writeFrame(p.out, p.send, p.plain); err != nil {
			return
		}
		if s.opts.Dynamic {
			// The distributed parties run on real CPUs; the modeled
			// dynamic workload charge applies to them identically.
			updateSecret(p.secret, s.opts.Platform.Costs())
		}
	}
}

// Round drives one secure-sum invocation from the first party.
func (s *NetworkedService) Round() ([]uint32, error) {
	p0 := s.parties[0]
	p0.rnd = p0.rnd[:s.opts.Dim]
	s.opts.Platform.Costs().ChargeCycles(s.opts.Platform.Costs().RandCycles(4 * s.opts.Dim))
	for i := range p0.rnd {
		// Plain math/rand-grade mask is fine for the baseline; the cost
		// model charge above keeps RNG costs comparable.
		p0.rnd[i] = p0.rnd[i]*lcgMul + lcgAdd + uint32(i)
	}
	maskVector(p0.m, p0.secret, p0.rnd)
	encodeVector(p0.plain, p0.m)
	if err := writeFrame(p0.out, p0.send, p0.plain); err != nil {
		return nil, err
	}
	plain, err := readFrame(p0.in, p0.recv, p0.plain)
	if err != nil {
		return nil, err
	}
	if err := decodeVector(p0.m, plain); err != nil {
		return nil, err
	}
	sum := make([]uint32, s.opts.Dim)
	unmask(sum, p0.m, p0.rnd)
	if s.opts.Dynamic {
		updateSecret(p0.secret, s.opts.Platform.Costs())
	}
	s.mu.Lock()
	s.lastSum = sum
	s.mu.Unlock()
	return sum, nil
}

// Close tears the ring down.
func (s *NetworkedService) Close() {
	if s.stopped {
		return
	}
	s.stopped = true
	for _, p := range s.parties {
		if p == nil {
			continue
		}
		if p.in != nil {
			_ = p.in.Close()
		}
		if p.out != nil {
			_ = p.out.Close()
		}
	}
	s.wg.Wait()
}
