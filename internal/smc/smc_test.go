package smc

import (
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/sgx"
)

func zeroPlatform() *sgx.Platform {
	return sgx.NewPlatform(sgx.WithCostModel(sgx.ZeroCostModel()))
}

func equalVec(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOptionsValidation(t *testing.T) {
	if _, err := NewSDK(Options{Parties: 1, Dim: 4, Platform: zeroPlatform()}); err == nil {
		t.Fatal("1 party accepted")
	}
	if _, err := NewSDK(Options{Parties: 3, Dim: 0, Platform: zeroPlatform()}); err == nil {
		t.Fatal("dim 0 accepted")
	}
	if _, err := StartEA(Options{Parties: 0, Dim: 4, Platform: zeroPlatform()}); err == nil {
		t.Fatal("0 parties accepted")
	}
}

func TestSDKRoundCorrectness(t *testing.T) {
	for _, parties := range []int{2, 3, 5, 8} {
		svc, err := NewSDK(Options{Parties: parties, Dim: 16, Platform: zeroPlatform()})
		if err != nil {
			t.Fatalf("NewSDK(%d): %v", parties, err)
		}
		sum, err := svc.Round()
		if err != nil {
			t.Fatalf("Round: %v", err)
		}
		want := ExpectedSum(parties, 16, 1, false)
		if !equalVec(sum, want) {
			t.Fatalf("parties=%d sum = %v, want %v", parties, sum[:4], want[:4])
		}
		svc.Close()
	}
}

func TestSDKRepeatedRounds(t *testing.T) {
	svc, err := NewSDK(Options{Parties: 3, Dim: 8, Platform: zeroPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	want := ExpectedSum(3, 8, 1, false)
	for r := 0; r < 10; r++ {
		sum, err := svc.Round()
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		// Static secrets: every round yields the same sum.
		if !equalVec(sum, want) {
			t.Fatalf("round %d sum changed: %v", r, sum[:4])
		}
	}
	if svc.Rounds() != 10 {
		t.Fatalf("Rounds = %d", svc.Rounds())
	}
}

func TestSDKDynamicRounds(t *testing.T) {
	svc, err := NewSDK(Options{Parties: 3, Dim: 8, Dynamic: true, Platform: zeroPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for r := 1; r <= 5; r++ {
		sum, err := svc.Round()
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		want := ExpectedSum(3, 8, r, true)
		if !equalVec(sum, want) {
			t.Fatalf("dynamic round %d sum = %v, want %v", r, sum[:4], want[:4])
		}
	}
}

func TestSDKTransitionAccounting(t *testing.T) {
	p := zeroPlatform()
	svc, err := NewSDK(Options{Parties: 4, Dim: 4, Platform: p})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	before := p.Snapshot()
	if _, err := svc.Round(); err != nil {
		t.Fatal(err)
	}
	d := p.Snapshot().Delta(before)
	// K+1 = 5 ECalls, 2 crossings each.
	if d.ECalls != 5 {
		t.Fatalf("ECalls per round = %d, want 5", d.ECalls)
	}
	if d.Crossings != 10 {
		t.Fatalf("Crossings per round = %d, want 10", d.Crossings)
	}
	// The paper's SDK variant avoids marshalling copies.
	if d.CopiedBytes != 0 {
		t.Fatalf("CopiedBytes = %d, want 0", d.CopiedBytes)
	}
}

func TestEACorrectness(t *testing.T) {
	svc, err := StartEA(Options{Parties: 3, Dim: 16, Platform: zeroPlatform()})
	if err != nil {
		t.Fatalf("StartEA: %v", err)
	}
	defer svc.Stop()

	waitRounds(t, svc, 5)
	sum := svc.LastSum()
	want := ExpectedSum(3, 16, 1, false)
	if !equalVec(sum, want) {
		t.Fatalf("EA sum = %v, want %v", sum[:4], want[:4])
	}
}

func TestEACorrectnessManyParties(t *testing.T) {
	svc, err := StartEA(Options{Parties: 8, Dim: 4, Platform: zeroPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()
	waitRounds(t, svc, 3)
	if !equalVec(svc.LastSum(), ExpectedSum(8, 4, 1, false)) {
		t.Fatalf("EA 8-party sum wrong: %v", svc.LastSum())
	}
}

func TestEADynamic(t *testing.T) {
	svc, err := StartEA(Options{Parties: 3, Dim: 8, Dynamic: true, Platform: zeroPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()
	// Dynamic sums change every round; check that the last observed sum
	// matches the expected sum for SOME recent round (the counter and
	// lastSum are sampled racily).
	waitRounds(t, svc, 10)
	sum := svc.LastSum()
	rounds := int(svc.Rounds())
	matched := false
	for r := rounds - 3; r <= rounds+3; r++ {
		if r >= 1 && equalVec(sum, ExpectedSum(3, 8, r, true)) {
			matched = true
			break
		}
	}
	if !matched {
		t.Fatalf("dynamic EA sum does not match any recent round (rounds=%d)", rounds)
	}
}

func TestEARingChannelsEncrypted(t *testing.T) {
	svc, err := StartEA(Options{Parties: 3, Dim: 4, Platform: zeroPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()
	for p := 0; p < 3; p++ {
		ch, ok := svc.Runtime().ChannelByName(ringName(p))
		if !ok {
			t.Fatalf("ring channel %d missing", p)
		}
		if !ch.Encrypted() {
			t.Fatalf("ring channel %d is not encrypted", p)
		}
	}
}

// TestEAWorkersStayInEnclaves checks the key deployment property: each
// party worker enters its enclave once and never transitions again.
func TestEAWorkersStayInEnclaves(t *testing.T) {
	p := zeroPlatform()
	svc, err := StartEA(Options{Parties: 3, Dim: 4, Platform: p})
	if err != nil {
		t.Fatal(err)
	}
	waitRounds(t, svc, 20)
	before := p.Snapshot().Crossings
	waitRounds(t, svc, svc.Rounds()+20)
	after := p.Snapshot().Crossings
	svc.Stop()
	if after != before {
		t.Fatalf("EA steady state paid %d crossings over 20 rounds, want 0", after-before)
	}
}

func TestExpectedSumProperties(t *testing.T) {
	// Static expected sums are independent of round count.
	if !equalVec(ExpectedSum(4, 8, 1, false), ExpectedSum(4, 8, 100, false)) {
		t.Fatal("static expected sum varies with rounds")
	}
	// Dynamic sums differ between rounds.
	if equalVec(ExpectedSum(4, 8, 1, true), ExpectedSum(4, 8, 2, true)) {
		t.Fatal("dynamic expected sum did not change")
	}
	// Round 1 dynamic equals static (no update applied yet).
	if !equalVec(ExpectedSum(4, 8, 1, true), ExpectedSum(4, 8, 1, false)) {
		t.Fatal("first dynamic round should use initial secrets")
	}
}

func waitRounds(t *testing.T, svc *EAService, n uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for svc.Rounds() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %d/%d rounds", svc.Rounds(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPipelinedRoundTimeBeforeRounds(t *testing.T) {
	svc, err := NewSDK(Options{Parties: 3, Dim: 4, Platform: zeroPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if got := svc.PipelinedRoundTime(); got != 0 {
		t.Fatalf("PipelinedRoundTime before any round = %v, want 0", got)
	}
	if _, err := svc.Round(); err != nil {
		t.Fatal(err)
	}
	if got := svc.PipelinedRoundTime(); got <= 0 {
		t.Fatalf("PipelinedRoundTime after a round = %v, want > 0", got)
	}
}

func TestSDKCloseIdempotent(t *testing.T) {
	svc, err := NewSDK(Options{Parties: 2, Dim: 4, Platform: zeroPlatform()})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	svc.Close() // must not panic
}
