package smc

import (
	"fmt"
	"time"

	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/sgx"
)

// SDKService is the SGX-SDK-style deployment of the secure-sum protocol
// (Figure 9b): each party is an enclave, but a single thread executes
// the whole ring by ECalling into one enclave after another, carrying
// the encrypted message through untrusted memory. Transitions are
// "efficient" per the paper — no marshalling copy depends on the vector
// size — so the per-round overhead relative to EActors is exactly the
// K+1 call round trips.
type SDKService struct {
	opts     Options
	platform *sgx.Platform
	ctx      *sgx.Context
	parties  []*sdkParty
	wire     []byte // the encrypted message in untrusted memory
	rounds   uint64

	// stageTime accumulates the in-enclave time of each protocol stage:
	// index 0 is P1's mask stage, 1..K-1 the inner additions, K is P1's
	// unmask stage. The benchmark harness composes these into the
	// pipelined EActors throughput model (see bench.FigSMC): on a
	// many-core host the EActors ring overlaps stages across rounds, so
	// its ideal throughput is the reciprocal of the slowest party's
	// per-round work — something a single-core CI host cannot exhibit in
	// wall-clock time but the paper's 8-thread machine does.
	stageTime []time.Duration
}

// sdkParty is one enclave of the SDK deployment with its link ciphers.
type sdkParty struct {
	enclave *sgx.Enclave
	secret  []uint32
	rnd     []uint32 // first party only
	m       []uint32
	plain   []byte
	// recv decrypts messages from the previous ring hop; send encrypts
	// to the next. Keys come from pairwise local attestation.
	recv, send *ecrypto.Cipher
}

// NewSDK creates the enclaves, attests the ring links and returns a
// ready service. Call Round for each secure-sum invocation.
func NewSDK(opts Options) (*SDKService, error) {
	if err := opts.normalise(); err != nil {
		return nil, err
	}
	k := opts.Parties
	svc := &SDKService{
		opts:      opts,
		platform:  opts.Platform,
		ctx:       sgx.NewContext(opts.Platform),
		parties:   make([]*sdkParty, k),
		wire:      make([]byte, 0, 4*opts.Dim+ecrypto.Overhead),
		stageTime: make([]time.Duration, k+1),
	}
	for p := 0; p < k; p++ {
		e, err := opts.Platform.CreateEnclave(fmt.Sprintf("smc-sdk-%d", p), core500KiB)
		if err != nil {
			svc.Close()
			return nil, err
		}
		sp := &sdkParty{
			enclave: e,
			secret:  initialSecret(p, opts.Dim),
			m:       make([]uint32, opts.Dim),
			plain:   make([]byte, 4*opts.Dim),
		}
		if p == 0 {
			sp.rnd = make([]uint32, opts.Dim)
		}
		svc.parties[p] = sp
	}
	// Pairwise ring keys via local attestation, like the EActors
	// channels get.
	for p := 0; p < k; p++ {
		next := (p + 1) % k
		key, err := sgx.EstablishSessionKey(svc.parties[p].enclave, svc.parties[next].enclave)
		if err != nil {
			svc.Close()
			return nil, err
		}
		send, err := ecrypto.NewCipher(key, 0)
		if err != nil {
			svc.Close()
			return nil, err
		}
		recv, err := ecrypto.NewCipher(key, 1)
		if err != nil {
			svc.Close()
			return nil, err
		}
		svc.parties[p].send = send
		svc.parties[next].recv = recv
	}
	return svc, nil
}

// core500KiB matches the paper's reported per-enclave footprint.
const core500KiB = 500 * 1024

// Round executes one secure-sum invocation and returns the sum vector.
func (s *SDKService) Round() ([]uint32, error) {
	k := s.opts.Parties
	costs := s.platform.Costs()

	// ECall into P1: generate the mask, build and encrypt m1. The
	// in/out buffers are nil: the SDK variant shares the encrypted
	// buffer in untrusted memory rather than marshalling it.
	p0 := s.parties[0]
	var roundErr error
	err := s.ctx.ECall(p0.enclave, nil, nil, func() {
		start := time.Now()
		p0.enclave.ReadRandUint32s(p0.rnd)
		maskVector(p0.m, p0.secret, p0.rnd)
		encodeVector(p0.plain, p0.m)
		s.wire = p0.send.Seal(s.wire[:0], p0.plain, nil)
		if s.opts.Dynamic {
			updateSecret(p0.secret, costs)
		}
		s.stageTime[0] += time.Since(start)
	})
	if err != nil {
		return nil, err
	}

	// ECall into each inner party in ring order.
	for i := 1; i < k; i++ {
		p := s.parties[i]
		err := s.ctx.ECall(p.enclave, nil, nil, func() {
			start := time.Now()
			defer func() { s.stageTime[i] += time.Since(start) }()
			plain, err := p.recv.Open(p.plain[:0], s.wire, nil)
			if err != nil {
				roundErr = fmt.Errorf("smc: party %d decrypt: %w", i, err)
				return
			}
			if err := decodeVector(p.m, plain); err != nil {
				roundErr = err
				return
			}
			addSecret(p.m, p.secret)
			encodeVector(p.plain, p.m)
			s.wire = p.send.Seal(s.wire[:0], p.plain, nil)
			if s.opts.Dynamic {
				updateSecret(p.secret, costs)
			}
		})
		if err != nil {
			return nil, err
		}
		if roundErr != nil {
			return nil, roundErr
		}
	}

	// Final ECall into P1: decrypt mK and unmask the sum.
	sum := make([]uint32, s.opts.Dim)
	err = s.ctx.ECall(p0.enclave, nil, nil, func() {
		start := time.Now()
		defer func() { s.stageTime[k] += time.Since(start) }()
		plain, err := p0.recv.Open(p0.plain[:0], s.wire, nil)
		if err != nil {
			roundErr = fmt.Errorf("smc: final decrypt: %w", err)
			return
		}
		if err := decodeVector(p0.m, plain); err != nil {
			roundErr = err
			return
		}
		unmask(sum, p0.m, p0.rnd)
	})
	if err != nil {
		return nil, err
	}
	if roundErr != nil {
		return nil, roundErr
	}
	s.rounds++
	return sum, nil
}

// Rounds returns the number of completed invocations.
func (s *SDKService) Rounds() uint64 { return s.rounds }

// ModelHopCycles is the per-hop channel cost the pipeline model adds to
// each party's stage work: dequeue/enqueue on the mboxes plus the
// polling latency of a dedicated spinning worker. The value (~2 µs at
// 3.4 GHz) is what the paper's own numbers imply for the EActors ring
// (EA/3 at dim=1 completes a round in ~5.3 µs, of which the crypto
// stages account for roughly half).
const ModelHopCycles = 6800

// PipelinedRoundTime returns the modelled per-round time of an ideally
// pipelined EActors ring built from the measured stage times: party P1
// performs both the mask and the unmask stage of (different) in-flight
// rounds, inner parties one addition each; every party additionally
// pays one channel hop (ModelHopCycles). With one core per party the
// ring's throughput is bounded by its slowest party. A single-core CI
// host cannot exhibit this pipelining in wall-clock time — the model
// restores exactly the parallelism the paper's 8-thread machine has,
// and nothing else.
func (s *SDKService) PipelinedRoundTime() time.Duration {
	if s.rounds == 0 {
		return 0
	}
	k := s.opts.Parties
	bottleneck := (s.stageTime[0] + s.stageTime[k]) / time.Duration(s.rounds)
	for i := 1; i < k; i++ {
		if t := s.stageTime[i] / time.Duration(s.rounds); t > bottleneck {
			bottleneck = t
		}
	}
	return bottleneck + s.platform.Costs().CyclesToDuration(ModelHopCycles)
}

// Close destroys the enclaves.
func (s *SDKService) Close() {
	for _, p := range s.parties {
		if p != nil && p.enclave != nil {
			s.platform.DestroyEnclave(p.enclave)
		}
	}
}
