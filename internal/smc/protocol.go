// Package smc implements the paper's second use case (Section 5.2): a
// secure multi-party sum over private vectors. K parties form a ring;
// the first party masks its secret with a fresh random vector, every
// hop adds its own secret, and the first party unmasks the final sum.
// All arithmetic is modulo 2^32 per element, so the mask statistically
// hides every partial sum.
//
// Two deployments reproduce Figure 9: the EActors variant (one party
// eactor per enclave, encrypted channels, one worker each) and the
// SGX-SDK-style variant (a single thread ECalls into one enclave after
// another). Their throughput difference across vector sizes and party
// counts is what Figures 12 and 13 plot.
package smc

import (
	"encoding/binary"
	"fmt"
	"time"

	"github.com/eactors/eactors-go/internal/faults"
	"github.com/eactors/eactors-go/internal/sgx"
)

// Work factors for the "dynamically computed vectors" case (Section
// 6.3.2). The paper applies an unspecified additional workload in which
// each party updates its secret after every completed sum; we model it
// as a fixed per-update cost plus a per-element cost, on top of the
// genuine LCG arithmetic below.
const (
	// SecretUpdateBaseCycles is the fixed portion of one secret update.
	SecretUpdateBaseCycles = 6000
	// SecretUpdateCyclesPerElem is the per-element portion.
	SecretUpdateCyclesPerElem = 30
)

// lcg constants (Numerical Recipes) for the deterministic secret update.
const (
	lcgMul = 1664525
	lcgAdd = 1013904223
)

// maskVector computes dst = secret + rnd (element-wise, mod 2^32).
func maskVector(dst, secret, rnd []uint32) {
	for i := range dst {
		dst[i] = secret[i] + rnd[i]
	}
}

// addSecret computes m += secret (element-wise, mod 2^32).
func addSecret(m, secret []uint32) {
	for i := range m {
		m[i] += secret[i]
	}
}

// unmask computes sum = m - rnd (element-wise, mod 2^32).
func unmask(sum, m, rnd []uint32) {
	for i := range sum {
		sum[i] = m[i] - rnd[i]
	}
}

// updateSecret advances every element through an LCG and charges the
// modeled dynamic-workload cost (case #2 of the evaluation).
func updateSecret(secret []uint32, costs *sgx.CostModel) {
	for i := range secret {
		secret[i] = secret[i]*lcgMul + lcgAdd
	}
	costs.ChargeCycles(SecretUpdateBaseCycles + SecretUpdateCyclesPerElem*float64(len(secret)))
}

// encodeVector serialises v little-endian into dst (must hold 4*len(v)).
func encodeVector(dst []byte, v []uint32) {
	for i, x := range v {
		binary.LittleEndian.PutUint32(dst[4*i:], x)
	}
}

// decodeVector deserialises into v from src.
func decodeVector(v []uint32, src []byte) error {
	if len(src) < 4*len(v) {
		return fmt.Errorf("smc: vector payload %d bytes, need %d", len(src), 4*len(v))
	}
	for i := range v {
		v[i] = binary.LittleEndian.Uint32(src[4*i:])
	}
	return nil
}

// initialSecret builds party p's deterministic starting secret, so tests
// and both deployments can compute the expected sum independently.
func initialSecret(party, dim int) []uint32 {
	s := make([]uint32, dim)
	for j := range s {
		s[j] = uint32(party*1_000_003 + j*97 + 1)
	}
	return s
}

// ExpectedSum returns the element-wise mod-2^32 sum the protocol must
// produce after `rounds` completed sums with (or without) dynamic
// updates. Round r uses the secrets as updated r times.
func ExpectedSum(parties, dim, rounds int, dynamic bool) []uint32 {
	secrets := make([][]uint32, parties)
	for p := range secrets {
		secrets[p] = initialSecret(p, dim)
	}
	if dynamic {
		// Each completed round updates every secret once; round N uses
		// secrets updated N-1 times.
		for r := 1; r < rounds; r++ {
			for p := range secrets {
				for j := range secrets[p] {
					secrets[p][j] = secrets[p][j]*lcgMul + lcgAdd
				}
			}
		}
	}
	sum := make([]uint32, dim)
	for _, s := range secrets {
		for j := range sum {
			sum[j] += s[j]
		}
	}
	return sum
}

// Options configures either deployment.
type Options struct {
	// Parties is the ring size K (>= 2; the paper sweeps 3..8).
	Parties int
	// Dim is the secret vector length.
	Dim int
	// Dynamic enables the case-#2 per-round secret recomputation.
	Dynamic bool
	// Platform supplies the SGX simulation; nil creates a default one.
	Platform *sgx.Platform
	// Faults arms the EActors deployment's runtime with a fault
	// injector (chaos testing); nil in production.
	Faults *faults.Injector
	// RetransmitAfter is how long the first party waits for a round to
	// come back around the ring before retransmitting it (the recovery
	// path for injected drops and corrupted seals). Zero uses
	// DefaultRetransmitAfter.
	RetransmitAfter time.Duration
}

// DefaultRetransmitAfter is generous against the ring's microsecond-
// scale hop latency, so retransmissions only fire on genuine loss.
const DefaultRetransmitAfter = 5 * time.Millisecond

func (o *Options) normalise() error {
	if o.Parties < 2 {
		return fmt.Errorf("smc: need at least 2 parties, got %d", o.Parties)
	}
	if o.Dim < 1 {
		return fmt.Errorf("smc: vector dimension %d", o.Dim)
	}
	if o.Platform == nil {
		o.Platform = sgx.NewPlatform()
	}
	if o.RetransmitAfter <= 0 {
		o.RetransmitAfter = DefaultRetransmitAfter
	}
	return nil
}
