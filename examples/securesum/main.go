// Securesum: the paper's Section-5.2 secure multi-party computation.
// Five parties, each confined to its own enclave, compute the sum of
// their private vectors over an encrypted ring without revealing any
// individual vector — and the example verifies the result against the
// analytic expectation and shows that the steady-state ring pays no
// enclave transitions.
//
// Run: go run ./examples/securesum
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/eactors/eactors-go/internal/sgx"
	"github.com/eactors/eactors-go/internal/smc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "securesum:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		parties = 5
		dim     = 256
		rounds  = 2000
	)
	platform := sgx.NewPlatform()
	svc, err := smc.StartEA(smc.Options{
		Parties:  parties,
		Dim:      dim,
		Platform: platform,
	})
	if err != nil {
		return err
	}
	defer svc.Stop()

	fmt.Printf("securesum: %d parties in %d enclaves, vectors of %d uint32s\n",
		parties, parties, dim)

	start := time.Now()
	svc.WaitRounds(rounds)
	elapsed := time.Since(start)

	sum := svc.LastSum()
	want := smc.ExpectedSum(parties, dim, 1, false)
	for i := range want {
		if sum[i] != want[i] {
			return fmt.Errorf("sum mismatch at element %d: got %d, want %d", i, sum[i], want[i])
		}
	}
	fmt.Printf("securesum: %d secure sums in %v (%.0f req/s), result verified\n",
		rounds, elapsed.Round(time.Millisecond), float64(rounds)/elapsed.Seconds())

	before := platform.Snapshot().Crossings
	svc.WaitRounds(svc.Rounds() + 100)
	after := platform.Snapshot().Crossings
	fmt.Printf("securesum: crossings over the last 100 rounds: %d (each worker stays in its enclave)\n",
		after-before)
	fmt.Printf("securesum: sum[0..3] = %v\n", sum[:4])
	return nil
}
