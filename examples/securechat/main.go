// Securechat: the paper's Section-5.1 messaging service end to end. It
// starts the EActors XMPP service with four enclaved shards spread over
// two enclaves, connects real TCP clients, exchanges one-to-one
// messages, and runs a group chat whose bodies the service re-encrypts
// per member with service-level keys — all while the networking eactors
// stay untrusted and the XMPP logic stays enclaved.
//
// Run: go run ./examples/securechat
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/eactors/eactors-go/internal/xmpp"
	"github.com/eactors/eactors-go/internal/xmpp/client"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "securechat:", err)
		os.Exit(1)
	}
}

func run() error {
	srv, err := xmpp.Start(xmpp.Options{
		Shards:       4,
		Trusted:      true,
		EnclaveCount: 2,
	})
	if err != nil {
		return err
	}
	defer srv.Stop()
	fmt.Printf("securechat: service on %s (4 enclaved shards in 2 enclaves)\n", srv.Addr())

	// Three users connect and authenticate.
	users := map[string]*client.Client{}
	for _, name := range []string{"alice", "bob", "carol"} {
		c, err := client.Dial(srv.Addr(), name, 10*time.Second)
		if err != nil {
			return fmt.Errorf("dial %s: %w", name, err)
		}
		defer c.Close()
		users[name] = c
	}

	// One-to-one: alice -> bob (the body is the clients' business; real
	// deployments put end-to-end ciphertext here).
	if err := users["alice"].SendMessage("bob", "hi bob — O2O via the enclave"); err != nil {
		return err
	}
	msg, err := users["bob"].ReadMessage(10 * time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("securechat: bob received O2O from %s: %q\n", msg.From, msg.Body)

	// Group chat: everyone joins; alice's message is decrypted with her
	// service key inside the enclave and re-encrypted for each member.
	for name, c := range users {
		if err := c.JoinRoom("standup"); err != nil {
			return fmt.Errorf("%s join: %w", name, err)
		}
	}
	time.Sleep(300 * time.Millisecond) // joins are asynchronous

	if err := users["alice"].SendGroupMessage("standup", "morning, team"); err != nil {
		return err
	}
	for _, name := range []string{"bob", "carol"} {
		msg, err := users[name].ReadMessage(10 * time.Second)
		if err != nil {
			return fmt.Errorf("%s group read: %w", name, err)
		}
		fmt.Printf("securechat: %s received group message from %s: %q\n", name, msg.From, msg.Body)
	}

	st := srv.Stats()
	fmt.Printf("securechat: done — %d connections, %d routed, %d group deliveries\n",
		st.Connections, st.Routed, st.GroupFanout)
	return nil
}
