// Quickstart: the paper's Listing-1 ping-pong, deployed across two
// enclaves. It shows the three core ideas of EActors:
//
//  1. eactor code (Body/Init) never mentions enclaves — the Config does;
//  2. channels are uniform: because ping and pong live in different
//     enclaves the runtime transparently encrypts the channel with a key
//     from simulated local attestation;
//  3. workers whose eactors stay in one enclave never pay transitions.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/sgx"
)

const rounds = 10000

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

type pingState struct {
	first bool
	count int
	buf   []byte
}

func run() error {
	platform := sgx.NewPlatform() // paper-calibrated SGX cost model

	cfg := core.Config{
		// Two enclaves, two workers: each worker stays inside "its"
		// enclave for the whole run.
		Enclaves: []core.EnclaveSpec{{Name: "left"}, {Name: "right"}},
		Workers:  []core.WorkerSpec{{}, {}},
		Channels: []core.ChannelSpec{
			// ping and pong are in different enclaves, so this channel
			// is transparently encrypted. Add Plaintext: true to see the
			// EA (non-encrypted) variant of the paper's Figure 11.
			{Name: "pp", A: "ping", B: "pong"},
		},
		Actors: []core.Spec{
			{
				Name: "ping", Enclave: "left", Worker: 0,
				State: &pingState{first: true, buf: make([]byte, 16)},
				Body:  pingBody,
			},
			{
				Name: "pong", Enclave: "right", Worker: 1,
				State: &pingState{buf: make([]byte, 16)},
				Body:  pongBody,
			},
		},
	}

	rt, err := core.NewRuntime(platform, cfg)
	if err != nil {
		return err
	}
	start := time.Now()
	if err := rt.Start(); err != nil {
		return err
	}
	rt.Wait()
	elapsed := time.Since(start)
	rt.Stop()

	stats := platform.Snapshot()
	fmt.Printf("quickstart: %d encrypted ping-pong pairs across two enclaves in %v (%.0f pairs/s)\n",
		rounds, elapsed.Round(time.Millisecond), float64(rounds)/elapsed.Seconds())
	fmt.Printf("quickstart: enclave crossings paid: %d (startup/shutdown only — no per-message transitions)\n",
		stats.Crossings)
	return nil
}

// pingBody mirrors the paper's Listing 1: send a ping on first
// activation, then answer every pong with the next ping.
func pingBody(self *core.Self) {
	st := self.State.(*pingState)
	ch := self.MustChannel("pp")
	if st.first {
		st.first = false
		_ = ch.Send([]byte("ping")) //sendcheck:ok
		self.Progress()
		return
	}
	n, ok, err := ch.Recv(st.buf)
	if err != nil || !ok || string(st.buf[:n]) != "pong" {
		return
	}
	st.count++
	if st.count >= rounds {
		self.StopRuntime()
		return
	}
	_ = ch.Send([]byte("ping")) //sendcheck:ok
	self.Progress()
}

func pongBody(self *core.Self) {
	st := self.State.(*pingState)
	ch := self.MustChannel("pp")
	n, ok, err := ch.Recv(st.buf)
	if err != nil || !ok || string(st.buf[:n]) != "ping" {
		return
	}
	_ = ch.Send([]byte("pong")) //sendcheck:ok
	self.Progress()
}
