// Keyvalue: the Persistent Object Store of Section 4.1. An enclaved
// eactor keeps user profiles in an encrypted, file-backed POS; the
// store's encryption key is sealed to the enclave identity and stored
// inside the POS itself, so a restart of the same enclave recovers it
// while any other enclave (or the untrusted host) cannot.
//
// Run: go run ./examples/keyvalue
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/pos"
	"github.com/eactors/eactors-go/internal/sgx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "keyvalue:", err)
		os.Exit(1)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "eactors-keyvalue")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	storePath := filepath.Join(dir, "profiles.pos")

	// The platform secret stands in for the physical machine identity;
	// keeping it fixed lets "reboots" unseal.
	platform := sgx.NewPlatform(sgx.WithPlatformSecret([]byte("example-machine")))
	enclave, err := platform.CreateEnclave("profile-service", 0)
	if err != nil {
		return err
	}

	// First boot: generate a store key inside the enclave, seal it, and
	// keep the sealed blob in the POS key slot.
	var storeKey [ecrypto.KeySize]byte
	enclave.ReadRand(storeKey[:])
	store, err := pos.Open(pos.Options{
		Path: storePath, SizeBytes: 1 << 20, EncryptionKey: &storeKey,
	})
	if err != nil {
		return err
	}
	sealed, err := enclave.Seal(storeKey[:], []byte("pos-store-key"))
	if err != nil {
		return err
	}
	if err := store.StoreSealedKey(sealed); err != nil {
		return err
	}

	// Business as usual: profile writes and reads, plus housekeeping.
	reader := store.RegisterReader()
	profiles := map[string]string{
		"alice": "prefers-dark-mode",
		"bob":   "speaks-french",
		"carol": "admin",
	}
	for user, profile := range profiles {
		if err := store.Set([]byte(user), []byte(profile)); err != nil {
			return err
		}
	}
	if err := store.Set([]byte("alice"), []byte("prefers-light-mode")); err != nil {
		return err
	}
	reader.Tick()
	reclaimed, err := store.Clean()
	if err != nil {
		return err
	}
	fmt.Printf("keyvalue: cleaner reclaimed %d outdated version(s)\n", reclaimed)
	if err := store.Sync(); err != nil {
		return err
	}
	if err := store.Close(); err != nil {
		return err
	}

	// "Reboot": a fresh platform object with the same machine secret and
	// the same enclave identity recovers the sealed key and the data.
	platform2 := sgx.NewPlatform(sgx.WithPlatformSecret([]byte("example-machine")))
	enclave2, err := platform2.CreateEnclave("profile-service", 0)
	if err != nil {
		return err
	}
	bootstrap, err := pos.Open(pos.Options{Path: storePath, SizeBytes: 1 << 20})
	if err != nil {
		return err
	}
	sealedBlob, err := bootstrap.LoadSealedKey()
	if err != nil {
		return err
	}
	if err := bootstrap.Close(); err != nil {
		return err
	}
	keyBytes, err := enclave2.Unseal(sealedBlob, []byte("pos-store-key"))
	if err != nil {
		return fmt.Errorf("unseal after reboot: %w", err)
	}
	var recovered [ecrypto.KeySize]byte
	copy(recovered[:], keyBytes)

	store2, err := pos.Open(pos.Options{
		Path: storePath, SizeBytes: 1 << 20, EncryptionKey: &recovered,
	})
	if err != nil {
		return err
	}
	defer store2.Close()
	for _, user := range []string{"alice", "bob", "carol"} {
		val, ok, err := store2.Get([]byte(user))
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("profile %q lost across reboot", user)
		}
		fmt.Printf("keyvalue: %s -> %s\n", user, val)
	}
	fmt.Println("keyvalue: encrypted store survived the reboot; key recovered via sealing")
	return nil
}
