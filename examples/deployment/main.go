// Deployment: the paper's configuration-file mechanism (Section 3.2).
// The same three actors — a producer, a classifier and a sink — are
// deployed twice from two JSON documents without touching their code:
// first everything untrusted on one worker, then the classifier alone
// in an enclave on its own worker, with its channels transparently
// encrypted. The paper's point is exactly this: trusted execution is a
// deployment decision, not a code-structure decision.
//
// Run: go run ./examples/deployment
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/eactors/eactors-go/internal/core"
	"github.com/eactors/eactors-go/internal/sgx"
)

const records = 500

const untrustedDeployment = `{
  "workers": [{}],
  "actors": [
    {"name": "source",     "type": "producer",   "worker": 0},
    {"name": "classifier", "type": "classifier", "worker": 0},
    {"name": "sink",       "type": "collector",  "worker": 0}
  ],
  "channels": [
    {"name": "raw",     "a": "source",     "b": "classifier"},
    {"name": "labeled", "a": "classifier", "b": "sink"}
  ]
}`

const trustedDeployment = `{
  "enclaves": [{"name": "scoring-vault"}],
  "workers": [{}, {}],
  "actors": [
    {"name": "source",     "type": "producer",   "worker": 0},
    {"name": "classifier", "type": "classifier", "enclave": "scoring-vault", "worker": 1},
    {"name": "sink",       "type": "collector",  "worker": 0}
  ],
  "channels": [
    {"name": "raw",     "a": "source",     "b": "classifier"},
    {"name": "labeled", "a": "classifier", "b": "sink"}
  ]
}`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "deployment:", err)
		os.Exit(1)
	}
}

type producerState struct{ next int }
type collectorState struct {
	got  int
	high int
}

// buildRegistry declares the actor code once; placement comes from the
// deployment documents.
func buildRegistry(done chan<- *collectorState) core.Registry {
	reg := core.Registry{}

	must(reg.Register("producer", core.RegisteredActor{
		NewState: func() any { return &producerState{} },
		Body: func(self *core.Self) {
			st := self.State.(*producerState)
			if st.next >= records {
				return
			}
			ch := self.MustChannel("raw")
			// A fake "transaction amount" derived from the index.
			record := []byte{byte(st.next), byte(st.next >> 8), byte(st.next * 37)}
			if ch.Send(record) == nil {
				st.next++
				self.Progress()
			}
		},
	}))

	must(reg.Register("classifier", core.RegisteredActor{
		Body: func(self *core.Self) {
			in := self.MustChannel("raw")
			out := self.MustChannel("labeled")
			buf := make([]byte, 8)
			n, ok, err := in.Recv(buf)
			if err != nil || !ok || n < 3 {
				return
			}
			// "Sensitive" scoring logic: label high-risk records.
			label := byte(0)
			if buf[2] > 200 {
				label = 1
			}
			_ = out.Send([]byte{buf[0], buf[1], label}) //sendcheck:ok
			self.Progress()
		},
	}))

	must(reg.Register("collector", core.RegisteredActor{
		NewState: func() any { return &collectorState{} },
		Body: func(self *core.Self) {
			st := self.State.(*collectorState)
			ch := self.MustChannel("labeled")
			buf := make([]byte, 8)
			n, ok, err := ch.Recv(buf)
			if err != nil || !ok || n < 3 {
				return
			}
			st.got++
			if buf[2] == 1 {
				st.high++
			}
			if st.got >= records {
				done <- st
				self.StopRuntime()
			}
			self.Progress()
		},
	}))
	return reg
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func runDeployment(label, doc string) error {
	done := make(chan *collectorState, 1)
	d, err := core.ParseDeployment([]byte(doc))
	if err != nil {
		return err
	}
	cfg, err := d.Resolve(buildRegistry(done))
	if err != nil {
		return err
	}
	platform := sgx.NewPlatform()
	rt, err := core.NewRuntime(platform, cfg)
	if err != nil {
		return err
	}
	start := time.Now()
	if err := rt.Start(); err != nil {
		return err
	}
	rt.Wait()
	rt.Stop()
	st := <-done
	enc := "plaintext"
	if ch, ok := rt.ChannelByName("raw"); ok && ch.Encrypted() {
		enc = "encrypted"
	}
	fmt.Printf("deployment[%s]: %d records classified (%d high-risk) in %v — channels %s, crossings %d\n",
		label, st.got, st.high, time.Since(start).Round(time.Millisecond),
		enc, platform.Snapshot().Crossings)
	return nil
}

func run() error {
	if err := runDeployment("untrusted", untrustedDeployment); err != nil {
		return err
	}
	// Same code, different file: the classifier now runs inside an
	// enclave and its channels encrypt transparently.
	return runDeployment("trusted", trustedDeployment)
}
