module github.com/eactors/eactors-go

go 1.22
