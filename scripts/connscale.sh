#!/usr/bin/env bash
# Connection-scale smoke: build the real server binaries, then let the
# connscale harness park CONNS mostly-idle connections on each and
# assert the readiness-loop scaling contract (bounded goroutines, flat
# per-connection memory, p99 parity with the legacy pump path).
#
#   CONNS=10000 SWEEP=1 ./scripts/connscale.sh
#
# SWEEP=1 adds the legacy-mode and 1k-connection rows to the output
# table (the EXPERIMENTS.md sweep); assertions only ever apply to the
# netloop rows.
set -euo pipefail
cd "$(dirname "$0")/.."

CONNS="${CONNS:-10000}"
SWEEP="${SWEEP:-0}"

ulimit -n "$(ulimit -Hn)" || true
echo "connscale.sh: fd limit soft=$(ulimit -Sn) hard=$(ulimit -Hn)"

mkdir -p bin
go build -o bin/ ./cmd/kvserver ./cmd/xmppserver ./cmd/connscale

ARGS=(-kvserver bin/kvserver -xmppserver bin/xmppserver -conns "$CONNS")
if [ "$SWEEP" = "1" ]; then
  ARGS+=(-sweep)
fi
exec ./bin/connscale "${ARGS[@]}"
