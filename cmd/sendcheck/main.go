// Command sendcheck is a vet-style audit of discarded channel-send
// results. Endpoint sends report failure through typed errors
// (core.ErrMailboxFull, core.ErrPoolEmpty); silently discarding one
// hides lost messages, which is exactly how the pre-supervision
// netactors and XMPP bugs looked. Every deliberate discard must carry
// a `//sendcheck:ok` marker on the same line (or the line above),
// which doubles as a prompt to justify the shed in a comment.
//
// Flagged shapes, for any method whose name starts with "Send":
//
//	_ = ep.Send(msg)            // blank-assigned result
//	sent, _ = ep.SendBatch(b)   // blank error in a multi-assign
//	ep.Send(msg)                // bare call, result dropped
//
// Usage: go run ./cmd/sendcheck ./...
// Exits 1 when an unmarked discard is found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

const marker = "sendcheck:ok"

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"./..."}
	}
	var files []string
	for _, root := range roots {
		dir, recursive := root, false
		if strings.HasSuffix(root, "/...") {
			dir, recursive = strings.TrimSuffix(root, "/..."), true
		}
		if dir == "" {
			dir = "."
		}
		files = append(files, goFiles(dir, recursive)...)
	}

	bad := 0
	for _, path := range files {
		bad += checkFile(path)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "sendcheck: %d discarded send result(s) without //%s\n", bad, marker)
		os.Exit(1)
	}
}

func goFiles(dir string, recursive bool) []string {
	var out []string
	if !recursive {
		entries, err := os.ReadDir(dir)
		if err != nil {
			fatalf("%v", err)
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				out = append(out, filepath.Join(dir, e.Name()))
			}
		}
		return out
	}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		fatalf("%v", err)
	}
	return out
}

// checkFile reports the number of unmarked discards in one file.
func checkFile(path string) int {
	src, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
	if err != nil {
		fatalf("%v", err)
	}
	lines := strings.Split(string(src), "\n")
	marked := func(line int) bool { // 1-based
		for _, l := range []int{line, line - 1} {
			if l >= 1 && l <= len(lines) && strings.Contains(lines[l-1], marker) {
				return true
			}
		}
		return false
	}

	bad := 0
	flag := func(pos token.Pos, call string) {
		p := fset.Position(pos)
		if marked(p.Line) {
			return
		}
		fmt.Printf("%s:%d: result of %s discarded without //%s\n", p.Filename, p.Line, call, marker)
		bad++
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			name, ok := sendCall(st.Rhs[0])
			if !ok {
				return true
			}
			for _, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					flag(st.Pos(), name)
					break
				}
			}
		case *ast.ExprStmt:
			if name, ok := sendCall(st.X); ok {
				flag(st.Pos(), name)
			}
		}
		return true
	})
	return bad
}

// sendCall reports whether expr is a method call whose name starts
// with "Send" (Send, SendNode, SendBatch, SendRetry, ...).
func sendCall(expr ast.Expr) (string, bool) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "Send") {
		return "", false
	}
	return sel.Sel.Name, true
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sendcheck: "+format+"\n", args...)
	os.Exit(1)
}
