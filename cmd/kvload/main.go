// Command kvload drives the KV protocol against a kvserver and reports
// throughput plus latency percentiles — the shard-scaling measurement
// driver behind the EXPERIMENTS.md table.
//
// Usage:
//
//	kvload -server 127.0.0.1:6380 -clients 8 -duration 10s -get-ratio 0.9
//
// With -depth > 1 each client speaks the framed multiplexed transport
// and keeps that many requests in flight on one connection (a sliding
// ring: issue the next op, then reap the oldest once the ring is full),
// which is the pipelining depth sweep behind EXPERIMENTS.md. -depth 1
// uses the legacy synchronous protocol.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/eactors/eactors-go/internal/fdlimit"
	"github.com/eactors/eactors-go/internal/kv"
)

// openIdleConns dials and holds count idle TCP connections — ballast
// for measuring how the server scales with mostly-idle fan-in (the
// readiness-loop sweep in EXPERIMENTS.md). Returns a closer.
func openIdleConns(server string, count int) (func(), error) {
	conns := make([]net.Conn, 0, count)
	closeAll := func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}
	for i := 0; i < count; i++ {
		c, err := net.DialTimeout("tcp", server, 10*time.Second)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("idle conn %d/%d: %w", i, count, err)
		}
		conns = append(conns, c)
	}
	return closeAll, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kvload:", err)
		os.Exit(1)
	}
}

// latencyRecorder collects request latencies for percentile reporting.
type latencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

func (r *latencyRecorder) record(d time.Duration) {
	r.mu.Lock()
	if len(r.samples) < 1_000_000 {
		r.samples = append(r.samples, d)
	}
	r.mu.Unlock()
}

func (r *latencyRecorder) percentile(p float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(p*float64(len(sorted)-1))]
}

// runPipelined is one load connection in framed mode: a sliding ring of
// depth in-flight requests over a single multiplexed session. Latency
// is issue-to-completion of each op, so deep rings trade per-op latency
// for connection throughput — exactly the sweep the depth table in
// EXPERIMENTS.md records.
func runPipelined(server string, depth, keys int, getRatio float64, rng *rand.Rand, value []byte,
	stop chan struct{}, measuring *atomic.Bool, ops, errs *atomic.Uint64, rec *latencyRecorder) {

	c, err := kv.DialPipelined(server, kv.PipelineOptions{Depth: depth, Timeout: 10 * time.Second})
	if err != nil {
		errs.Add(1)
		return
	}
	defer c.Close()
	type slot struct {
		p     *kv.Pending
		start time.Time
	}
	ring := make([]slot, 0, depth)
	reap := func(s slot) {
		resp, err := s.p.Wait()
		if err != nil || resp.Status == kv.StatusErr {
			errs.Add(1)
			return
		}
		if measuring.Load() {
			ops.Add(1)
			rec.record(time.Since(s.start))
		}
	}
	defer func() {
		for _, s := range ring {
			reap(s)
		}
	}()
	key := make([]byte, 0, 24)
	for {
		select {
		case <-stop:
			return
		default:
		}
		key = append(key[:0], []byte(fmt.Sprintf("key-%d", rng.Intn(keys)))...)
		var p *kv.Pending
		var err error
		start := time.Now()
		switch r := rng.Float64(); {
		case r < getRatio:
			p, err = c.IssueGet(key)
		case r < getRatio+(1-getRatio)*0.9:
			p, err = c.IssueSet(key, value)
		default:
			p, err = c.IssueDel(key)
		}
		if err != nil {
			errs.Add(1)
			return // session poisoned; this connection is done
		}
		ring = append(ring, slot{p: p, start: start})
		if len(ring) == depth {
			reap(ring[0])
			copy(ring, ring[1:])
			ring = ring[:len(ring)-1]
		}
	}
}

func run() error {
	server := flag.String("server", "", "server address (required)")
	clients := flag.Int("clients", 8, "concurrent client connections")
	duration := flag.Duration("duration", 10*time.Second, "measure window")
	warmup := flag.Duration("warmup", time.Second, "warmup before measuring")
	keys := flag.Int("keys", 10_000, "key-space size")
	valueSize := flag.Int("value", 128, "value bytes")
	getRatio := flag.Float64("get-ratio", 0.9, "fraction of operations that are GETs (rest split SET/DEL 9:1)")
	seed := flag.Int64("seed", 1, "workload PRNG seed")
	depth := flag.Int("depth", 1, "pipelining depth per connection (1 = legacy synchronous protocol, >1 = framed multiplexed transport)")
	idleConns := flag.Int("idle-conns", 0, "idle connections held open for the whole run (readiness-loop scaling ballast)")
	jsonOut := flag.Bool("json", false, "print the results as one JSON object on stdout (progress goes to stderr)")
	flag.Parse()
	if *server == "" {
		return fmt.Errorf("-server is required")
	}

	// With -json, stdout carries exactly one JSON object; everything
	// else goes to stderr so scripted sweeps can pipe straight into jq.
	info := os.Stdout
	if *jsonOut {
		info = os.Stderr
	}
	if limit, err := fdlimit.Raise(); err != nil {
		fmt.Fprintf(info, "kvload: fd limit %d (raise failed: %v)\n", limit, err)
	} else if limit > 0 {
		fmt.Fprintf(info, "kvload: fd limit %d\n", limit)
	}
	if *idleConns > 0 {
		closeIdle, err := openIdleConns(*server, *idleConns)
		if err != nil {
			return err
		}
		defer closeIdle()
		fmt.Fprintf(info, "kvload: holding %d idle connections\n", *idleConns)
	}

	var ops, errs atomic.Uint64
	rec := &latencyRecorder{}
	var measuring atomic.Bool
	stop := make(chan struct{})

	var wg sync.WaitGroup
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(id)))
			value := make([]byte, *valueSize)
			rng.Read(value)
			if *depth > 1 {
				runPipelined(*server, *depth, *keys, *getRatio, rng, value, stop, &measuring, &ops, &errs, rec)
				return
			}
			c, err := kv.Dial(*server, 5*time.Second)
			if err != nil {
				errs.Add(1)
				return
			}
			defer c.Close()
			key := make([]byte, 0, 24)
			for {
				select {
				case <-stop:
					return
				default:
				}
				key = append(key[:0], []byte(fmt.Sprintf("key-%d", rng.Intn(*keys)))...)
				start := time.Now()
				var err error
				switch r := rng.Float64(); {
				case r < *getRatio:
					_, _, err = c.Get(key)
				case r < *getRatio+(1-*getRatio)*0.9:
					err = c.Set(key, value)
				default:
					_, err = c.Del(key)
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				if measuring.Load() {
					ops.Add(1)
					rec.record(time.Since(start))
				}
			}
		}(w)
	}

	time.Sleep(*warmup)
	measuring.Store(true)
	time.Sleep(*duration)
	measuring.Store(false)
	close(stop)
	wg.Wait()

	total := ops.Load()
	p50, p95, p99 := rec.percentile(0.50), rec.percentile(0.95), rec.percentile(0.99)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		return enc.Encode(loadResult{
			Tool:       "kvload",
			Ops:        total,
			DurationNs: duration.Nanoseconds(),
			OpsPerSec:  float64(total) / duration.Seconds(),
			Errors:     errs.Load(),
			Clients:    *clients,
			Depth:      *depth,
			P50Ns:      p50.Nanoseconds(),
			P95Ns:      p95.Nanoseconds(),
			P99Ns:      p99.Nanoseconds(),
		})
	}
	fmt.Printf("kvload: %d ops in %s = %.0f ops/s (depth=%d, %d errors)\n",
		total, *duration, float64(total)/duration.Seconds(), *depth, errs.Load())
	fmt.Printf("kvload: latency p50=%s p95=%s p99=%s\n", p50, p95, p99)
	return nil
}

// loadResult is the -json results contract: one object on stdout,
// throughput plus latency percentiles, all durations in nanoseconds.
type loadResult struct {
	Tool       string  `json:"tool"`
	Ops        uint64  `json:"ops"`
	DurationNs int64   `json:"duration_ns"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Errors     uint64  `json:"errors"`
	Clients    int     `json:"clients"`
	Depth      int     `json:"depth,omitempty"`
	P50Ns      int64   `json:"p50_ns"`
	P95Ns      int64   `json:"p95_ns"`
	P99Ns      int64   `json:"p99_ns"`
}
