// Command posctl inspects and manipulates a Persistent Object Store
// file (Section 4.1 of the paper).
//
// Usage:
//
//	posctl -store /tmp/app.pos set mykey myvalue
//	posctl -store /tmp/app.pos get mykey
//	posctl -store /tmp/app.pos del mykey
//	posctl -store /tmp/app.pos list
//	posctl -store /tmp/app.pos stats
//	posctl -store /tmp/app.pos clean
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/eactors/eactors-go/internal/pos"
	"github.com/eactors/eactors-go/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "posctl:", err)
		os.Exit(1)
	}
}

func run() error {
	store := flag.String("store", "", "store file path (required)")
	size := flag.Int("size", 16<<20, "store size in bytes (used at creation)")
	buckets := flag.Int("buckets", 0, "bucket count (must match an existing store)")
	region := flag.Int("region", 0, "region size in bytes")
	metrics := flag.String("metrics", "", "serve store telemetry over HTTP at this address, e.g. :9090, until interrupted (like kvserver/xmppserver)")
	flag.Parse()

	if *store == "" {
		return fmt.Errorf("-store is required")
	}
	args := flag.Args()
	if len(args) == 0 {
		return fmt.Errorf("command required: set|get|del|list|stats|clean")
	}

	s, err := pos.Open(pos.Options{
		Path: *store, SizeBytes: *size, Buckets: *buckets, RegionSize: *region,
	})
	if err != nil {
		return err
	}
	defer s.Close()

	if *metrics != "" {
		reg := telemetry.New(1, 0)
		s.AttachTelemetry(reg)
		bound, stopHTTP, err := telemetry.Serve(*metrics, reg)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer stopHTTP()
		fmt.Fprintf(os.Stderr, "posctl: metrics on http://%s/metrics (pprof on /debug/pprof/)\n", bound)
		if err := execute(s, args); err != nil {
			return err
		}
		// Keep the exporter up so the store counters the command just
		// produced can actually be scraped; interrupt to exit.
		fmt.Fprintln(os.Stderr, "posctl: serving metrics until interrupted (ctrl-c to exit)")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		return nil
	}
	return execute(s, args)
}

// execute runs one posctl command against the open store.
func execute(s *pos.Store, args []string) error {
	switch args[0] {
	case "set":
		if len(args) != 3 {
			return fmt.Errorf("usage: set <key> <value>")
		}
		if err := s.Set([]byte(args[1]), []byte(args[2])); err != nil {
			return err
		}
		return s.Sync()
	case "get":
		if len(args) != 2 {
			return fmt.Errorf("usage: get <key>")
		}
		val, ok, err := s.Get([]byte(args[1]))
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("key %q not found", args[1])
		}
		fmt.Println(string(val))
		return nil
	case "del":
		if len(args) != 2 {
			return fmt.Errorf("usage: del <key>")
		}
		found, err := s.Delete([]byte(args[1]))
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("key %q not found", args[1])
		}
		return s.Sync()
	case "list":
		count := 0
		err := s.Range(func(key, value []byte) bool {
			fmt.Printf("%s\t%s\n", key, value)
			count++
			return true
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%d keys\n", count)
		return nil
	case "stats":
		st := s.Stats()
		fmt.Printf("regions: %d total, %d free\nsets: %d  gets: %d  cleaned: %d\n",
			st.Regions, st.FreeRegions, st.Sets, st.Gets, st.Cleaned)
		return nil
	case "clean":
		n, err := s.Clean()
		if err != nil {
			return err
		}
		fmt.Printf("reclaimed %d regions\n", n)
		return s.Sync()
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}
