// Command benchgate compares `go test -bench` output against a
// committed baseline (BENCH_BASELINE.json) and emits GitHub Actions
// warning annotations for regressions beyond a threshold. It is
// deliberately warn-only: absolute ns/op on shared CI runners is too
// noisy to gate merges on, but a >10% jump on a hot path deserves a
// visible flag on the run.
//
// Usage:
//
//	go test -run xxx -bench ... -count 3 ./... | tee bench.txt
//	go run ./cmd/benchgate -baseline BENCH_BASELINE.json bench.txt
//	go run ./cmd/benchgate -baseline BENCH_BASELINE.json -update bench.txt
//
// With -count N repeats, the best (minimum) ns/op per benchmark is
// used on both sides of the comparison — the minimum is the least
// noisy estimator of a benchmark's true cost on a contended machine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Baseline is the committed reference: best ns/op per benchmark, plus
// a note about how it was produced.
type Baseline struct {
	Note       string             `json:"note"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// benchLine matches one result line, e.g.
//
//	BenchmarkMboxSingle-8   1000000   56.99 ns/op   0 B/op   0 allocs/op
//
// The -N GOMAXPROCS suffix is optional and stripped: baselines must
// compare across machines with different core counts.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func parseBench(r io.Reader) (map[string]float64, error) {
	best := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := best[m[1]]; !ok || ns < prev {
			best[m[1]] = ns
		}
	}
	return best, sc.Err()
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "baseline JSON path")
	threshold := flag.Float64("threshold", 0.10, "relative ns/op regression that triggers a warning")
	update := flag.Bool("update", false, "rewrite the baseline from the input instead of comparing")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("open input: %v", err)
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in)
	if err != nil {
		fatalf("parse bench output: %v", err)
	}
	if len(current) == 0 {
		// An empty run means the bench invocation itself broke (renamed
		// benchmarks, bad -bench regexp); that must fail loudly.
		fatalf("no benchmark results found in input")
	}

	if *update {
		writeBaseline(*baselinePath, current)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("read baseline: %v", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("parse baseline: %v", err)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	warnings, missing := 0, 0
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := current[name]
		if !ok {
			fmt.Printf("::warning::benchgate: %s is in the baseline but was not run\n", name)
			missing++
			continue
		}
		delta := (got - want) / want
		status := "ok"
		if delta > *threshold {
			fmt.Printf("::warning::benchgate: %s regressed %.1f%%: %.1f ns/op vs %.1f ns/op baseline\n",
				name, delta*100, got, want)
			status = "REGRESSED"
			warnings++
		}
		fmt.Printf("%-50s %10.1f ns/op  baseline %10.1f  %+6.1f%%  %s\n", name, got, want, delta*100, status)
	}
	fmt.Printf("benchgate: %d benchmarks compared, %d regressions flagged, %d missing (threshold %.0f%%, warn-only)\n",
		len(names)-missing, warnings, missing, *threshold*100)
}

func writeBaseline(path string, best map[string]float64) {
	out := Baseline{
		Note: "Best-of-N ns/op per benchmark; regenerate with: " +
			"go test -run xxx -bench <names> -count 3 ./... | go run ./cmd/benchgate -update",
		Benchmarks: best,
	}
	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatalf("encode baseline: %v", err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		fatalf("write baseline: %v", err)
	}
	fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(best), path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
