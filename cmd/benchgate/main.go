// Command benchgate compares `go test -bench` output against a
// committed baseline (BENCH_BASELINE.json) and gates CI on regressions.
//
// Two modes:
//
//   - warn (default): regressions emit GitHub Actions warning
//     annotations but the exit code stays zero.
//   - -fail: regressions fail the run — but only after a confirmation
//     pass. Flagged benchmarks are re-run best-of-N (`go test -bench`
//     on just those names), the re-run minima are merged in, and only
//     benchmarks that STILL regress fail the gate. One noisy sample on
//     a contended runner does not block a merge; a reproducible
//     slowdown does.
//
// Per-benchmark noise floors live in the baseline: "default_tolerance"
// applies to every benchmark (falling back to -threshold when absent)
// and the "tolerances" map overrides it per benchmark — inherently
// noisy paths get wider bands instead of a looser global gate.
//
// Usage:
//
//	go test -run xxx -bench ... -count 3 ./... | tee bench.txt
//	go run ./cmd/benchgate -baseline BENCH_BASELINE.json bench.txt
//	go run ./cmd/benchgate -baseline BENCH_BASELINE.json -fail -rerun-pkgs ./internal/... bench.txt
//	go run ./cmd/benchgate -baseline BENCH_BASELINE.json -update bench.txt
//
// With -count N repeats, the best (minimum) ns/op per benchmark is
// used on both sides of the comparison — the minimum is the least
// noisy estimator of a benchmark's true cost on a contended machine.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed reference: best ns/op per benchmark, the
// tolerance policy, and a note about how it was produced.
type Baseline struct {
	Note string `json:"note"`
	// DefaultTolerance is the relative regression every benchmark is
	// allowed before flagging (0 = use the -threshold flag).
	DefaultTolerance float64 `json:"default_tolerance,omitempty"`
	// Tolerances widens (or tightens) the band for individual
	// benchmarks, keyed by full name including sub-benchmark.
	Tolerances map[string]float64 `json:"tolerances,omitempty"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// tolerance resolves the allowed relative regression for one benchmark.
func (b *Baseline) tolerance(name string, fallback float64) float64 {
	if t, ok := b.Tolerances[name]; ok {
		return t
	}
	if b.DefaultTolerance > 0 {
		return b.DefaultTolerance
	}
	return fallback
}

// benchLine matches one result line, e.g.
//
//	BenchmarkMboxSingle-8   1000000   56.99 ns/op   0 B/op   0 allocs/op
//
// The -N GOMAXPROCS suffix is optional and stripped: baselines must
// compare across machines with different core counts.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func parseBench(r io.Reader) (map[string]float64, error) {
	best := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := best[m[1]]; !ok || ns < prev {
			best[m[1]] = ns
		}
	}
	return best, sc.Err()
}

// regression is one benchmark beyond its tolerance.
type regression struct {
	name      string
	got, want float64
	tolerance float64
}

// evaluate compares current results against the baseline and returns
// the out-of-tolerance set plus the baseline entries that never ran.
func evaluate(base *Baseline, current map[string]float64, fallback float64) (regs []regression, missing []string) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := current[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		if tol := base.tolerance(name, fallback); (got-want)/want > tol {
			regs = append(regs, regression{name: name, got: got, want: want, tolerance: tol})
		}
	}
	return regs, missing
}

// rerun re-measures just the flagged benchmarks, best-of-count, and
// merges the minima into current. Sub-benchmark names collapse to their
// top-level function for the -bench regexp.
func rerun(regs []regression, pkgs []string, count int, benchtime string, current map[string]float64) error {
	tops := make(map[string]bool)
	for _, r := range regs {
		top := r.name
		if i := strings.IndexByte(top, '/'); i >= 0 {
			top = top[:i]
		}
		tops[top] = true
	}
	names := make([]string, 0, len(tops))
	for t := range tops {
		names = append(names, t)
	}
	sort.Strings(names)

	args := []string{"test", "-run", "xxx",
		"-bench", "^(" + strings.Join(names, "|") + ")$",
		"-count", strconv.Itoa(count)}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, pkgs...)
	fmt.Printf("benchgate: confirming %d flagged benchmark(s): go %s\n", len(regs), strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("confirmation run: %w", err)
	}
	confirmed, err := parseBench(&out)
	if err != nil {
		return fmt.Errorf("parse confirmation run: %w", err)
	}
	if len(confirmed) == 0 {
		return fmt.Errorf("confirmation run produced no results (benchmarks renamed?)")
	}
	for name, ns := range confirmed {
		if prev, ok := current[name]; !ok || ns < prev {
			current[name] = ns
		}
	}
	return nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "baseline JSON path")
	threshold := flag.Float64("threshold", 0.10, "fallback relative regression tolerance when the baseline sets none")
	failMode := flag.Bool("fail", false, "exit nonzero on confirmed regressions instead of warning")
	rerunPkgs := flag.String("rerun-pkgs", "./...", "comma-separated packages for the -fail confirmation re-run")
	rerunCount := flag.Int("rerun-count", 3, "repetitions for the confirmation re-run (best-of)")
	benchtime := flag.String("benchtime", "", "-benchtime for the confirmation re-run (e.g. 20000x)")
	update := flag.Bool("update", false, "rewrite the baseline's measurements from the input instead of comparing (tolerances are preserved)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("open input: %v", err)
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in)
	if err != nil {
		fatalf("parse bench output: %v", err)
	}
	if len(current) == 0 {
		// An empty run means the bench invocation itself broke (renamed
		// benchmarks, bad -bench regexp); that must fail loudly.
		fatalf("no benchmark results found in input")
	}

	if *update {
		writeBaseline(*baselinePath, current)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("read baseline: %v", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("parse baseline: %v", err)
	}

	regs, missing := evaluate(&base, current, *threshold)
	if *failMode && len(regs) > 0 {
		if err := rerun(regs, strings.Split(*rerunPkgs, ","), *rerunCount, *benchtime, current); err != nil {
			fatalf("%v", err)
		}
		regs, missing = evaluate(&base, current, *threshold)
	}

	severity := "warning"
	if *failMode {
		severity = "error"
	}
	flagged := make(map[string]regression, len(regs))
	for _, r := range regs {
		flagged[r.name] = r
		fmt.Printf("::%s::benchgate: %s regressed %.1f%%: %.1f ns/op vs %.1f ns/op baseline (tolerance %.0f%%)\n",
			severity, r.name, (r.got-r.want)/r.want*100, r.got, r.want, r.tolerance*100)
	}
	for _, name := range missing {
		fmt.Printf("::%s::benchgate: %s is in the baseline but was not run\n", severity, name)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		got, ok := current[name]
		if !ok {
			continue
		}
		want := base.Benchmarks[name]
		status := "ok"
		if _, bad := flagged[name]; bad {
			status = "REGRESSED"
		}
		fmt.Printf("%-50s %10.1f ns/op  baseline %10.1f  %+6.1f%%  %s\n",
			name, got, want, (got-want)/want*100, status)
	}

	mode := "warn-only"
	if *failMode {
		mode = "hard-fail"
	}
	fmt.Printf("benchgate: %d benchmarks compared, %d regressions, %d missing (%s)\n",
		len(names)-len(missing), len(regs), len(missing), mode)
	if *failMode && (len(regs) > 0 || len(missing) > 0) {
		os.Exit(1)
	}
}

func writeBaseline(path string, best map[string]float64) {
	out := Baseline{
		Note: "Best-of-N ns/op per benchmark; regenerate with: " +
			"go test -run xxx -bench <names> -count 3 ./... | go run ./cmd/benchgate -update",
		DefaultTolerance: 0.25,
	}
	// Tolerance policy survives measurement refreshes.
	if raw, err := os.ReadFile(path); err == nil {
		var old Baseline
		if json.Unmarshal(raw, &old) == nil {
			if old.DefaultTolerance > 0 {
				out.DefaultTolerance = old.DefaultTolerance
			}
			out.Tolerances = old.Tolerances
		}
	}
	out.Benchmarks = best
	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatalf("encode baseline: %v", err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		fatalf("write baseline: %v", err)
	}
	fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(best), path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
