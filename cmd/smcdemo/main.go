// Command smcdemo runs the secure multi-party sum service (Section 5.2
// of the paper) in both deployments and reports their throughput and
// the verified sum.
//
// Usage:
//
//	smcdemo -parties 5 -dim 1000 -rounds 5000 -dynamic
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/eactors/eactors-go/internal/sgx"
	"github.com/eactors/eactors-go/internal/smc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smcdemo:", err)
		os.Exit(1)
	}
}

func run() error {
	parties := flag.Int("parties", 3, "ring size K")
	dim := flag.Int("dim", 100, "secret vector dimension")
	rounds := flag.Int("rounds", 1000, "secure-sum invocations to run")
	dynamic := flag.Bool("dynamic", false, "recompute secrets after every round (case #2)")
	flag.Parse()

	fmt.Printf("smcdemo: %d parties, dim %d, %d rounds, dynamic=%v\n",
		*parties, *dim, *rounds, *dynamic)

	// SGX-SDK-style deployment.
	sdk, err := smc.NewSDK(smc.Options{
		Parties: *parties, Dim: *dim, Dynamic: *dynamic,
		Platform: sgx.NewPlatform(),
	})
	if err != nil {
		return err
	}
	start := time.Now()
	var sum []uint32
	for r := 0; r < *rounds; r++ {
		if sum, err = sdk.Round(); err != nil {
			sdk.Close()
			return err
		}
	}
	sdkTime := time.Since(start)
	sdk.Close()
	fmt.Printf("  SDK-style (EC): %8.0f req/s   (%v for %d rounds)\n",
		float64(*rounds)/sdkTime.Seconds(), sdkTime.Round(time.Millisecond), *rounds)

	// EActors deployment.
	ea, err := smc.StartEA(smc.Options{
		Parties: *parties, Dim: *dim, Dynamic: *dynamic,
		Platform: sgx.NewPlatform(),
	})
	if err != nil {
		return err
	}
	start = time.Now()
	ea.WaitRounds(uint64(*rounds))
	eaTime := time.Since(start)
	eaSum := ea.LastSum()
	ea.Stop()
	fmt.Printf("  EActors   (EA): %8.0f req/s   (%v for %d rounds)\n",
		float64(*rounds)/eaTime.Seconds(), eaTime.Round(time.Millisecond), *rounds)

	// Verify both against the analytic expectation.
	want := smc.ExpectedSum(*parties, *dim, *rounds, *dynamic)
	if !*dynamic {
		for i := range want {
			if sum[i] != want[i] {
				return fmt.Errorf("SDK sum mismatch at element %d: %d != %d", i, sum[i], want[i])
			}
		}
		fmt.Println("  SDK sum verified against the analytic expectation")
	}
	fmt.Printf("  sum[0..4] = %v (EA) \n", head(eaSum, 4))
	return nil
}

func head(v []uint32, n int) []uint32 {
	if len(v) < n {
		return v
	}
	return v[:n]
}
