// Command kvserver runs the EActors networked secure key-value service:
// an untrusted FRONTEND doing stream reassembly and key-affinity
// routing, N enclaved KVSTORE eactors, and a sharded, write-back-cached
// Persistent Object Store sealing every record at rest.
//
// Usage:
//
//	kvserver -listen 127.0.0.1:6380 -shards 4 -trusted -dir /var/lib/kv -encrypt
package main

import (
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/eactors/eactors-go/internal/ecrypto"
	"github.com/eactors/eactors-go/internal/kv"
	"github.com/eactors/eactors-go/internal/netloop"
	"github.com/eactors/eactors-go/internal/profile"
	"github.com/eactors/eactors-go/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:6380", "TCP listen address")
	shards := flag.Int("shards", 4, "number of KVSTORE eactors / POS shards")
	trusted := flag.Bool("trusted", true, "run each KVSTORE eactor inside its own enclave")
	switchless := flag.Bool("switchless", false, "service encrypted channels with switchless proxy workers (needs -trusted)")
	dir := flag.String("dir", "", "store directory (empty = volatile in-memory shards)")
	storeSize := flag.Int("store-size", 16<<20, "per-shard store size in bytes")
	encrypt := flag.Bool("encrypt", false, "seal every record at rest (see -key)")
	keyHex := flag.String("key", "", "hex store encryption key (with -encrypt; empty generates an ephemeral key — persisted stores then cannot reopen)")
	flush := flag.Duration("flush", 100*time.Millisecond, "write-back flush interval (negative = sync per drained burst)")
	sessionWindow := flag.Int("session-window", 0, "per-session flow-control advertisement in bytes (0 = transport default)")
	replayWindow := flag.Int("replay-window", 0, "per-session resend-dedup cache depth (0 = transport default)")
	noPipeline := flag.Bool("no-pipeline", false, "refuse the framed multiplexed transport (legacy protocol only; framed clients downgrade)")
	netloopOn := flag.Bool("netloop", false, "multiplex connection reads through the event-driven readiness loop (O(pollers+dispatchers) goroutines instead of one per connection)")
	netloopPollers := flag.Int("netloop-pollers", 1, "readiness-loop poller goroutines (with -netloop)")
	netloopDispatchers := flag.Int("netloop-dispatchers", 4, "readiness-loop dispatcher goroutines (with -netloop)")
	statsEvery := flag.Duration("stats", 10*time.Second, "stats reporting interval (0 = off)")
	metrics := flag.String("metrics", "", "serve telemetry over HTTP at this address, e.g. :9090 (enables telemetry)")
	traceOn := flag.Bool("trace", false, "enable sampled causal tracing (exported on /debug/traces when -metrics is set)")
	traceSample := flag.Int("trace-sample", 0, "root one trace per this many inbound bursts (0 = default 64)")
	profileOn := flag.Bool("profile", false, "enable per-actor cost accounting (exported on /debug/profile when -metrics is set; see eactors-top)")
	profileSample := flag.Int("profile-sample", 0, "measure one in this many seal/open operations (0 = default 16)")
	profileOut := flag.String("profile-out", "", "append periodic cost-model snapshots to this JSONL file (enables -profile)")
	profileInterval := flag.Duration("profile-interval", 5*time.Second, "snapshot period for -profile-out")
	flag.Parse()
	if *profileOut != "" {
		*profileOn = true
	}

	var encKey *[ecrypto.KeySize]byte
	if *encrypt {
		var key [ecrypto.KeySize]byte
		if *keyHex != "" {
			raw, err := hex.DecodeString(*keyHex)
			if err != nil || len(raw) != ecrypto.KeySize {
				return fmt.Errorf("-key must be %d hex bytes", ecrypto.KeySize)
			}
			copy(key[:], raw)
		} else {
			if _, err := rand.Read(key[:]); err != nil {
				return err
			}
			if *dir != "" {
				fmt.Println("kvserver: warning: ephemeral key over a persistent store — data unreadable after restart (pass -key)")
			}
		}
		encKey = &key
	}

	srv, err := kv.Start(kv.Options{
		ListenAddr:         *listen,
		Shards:             *shards,
		Trusted:            *trusted,
		Switchless:         *switchless,
		Dir:                *dir,
		StoreSize:          *storeSize,
		EncryptionKey:      encKey,
		FlushInterval:      *flush,
		SessionWindow:      *sessionWindow,
		ReplayWindow:       *replayWindow,
		DisablePipelining:  *noPipeline,
		Telemetry:          *metrics != "",
		Trace:              *traceOn,
		TraceSampleEvery:   *traceSample,
		Profile:            *profileOn,
		ProfileSampleEvery: *profileSample,
		NetLoop: netloop.Config{
			Enabled:     *netloopOn,
			Pollers:     *netloopPollers,
			Dispatchers: *netloopDispatchers,
		},
	})
	if err != nil {
		return err
	}
	defer srv.Stop()
	fmt.Printf("kvserver: listening on %s (shards=%d trusted=%v switchless=%v encrypted=%v dir=%q netloop=%v)\n",
		srv.Addr(), *shards, *trusted, *switchless && *trusted, encKey != nil, *dir, *netloopOn)
	if *metrics != "" {
		bound, stopHTTP, err := telemetry.Serve(*metrics, srv.Telemetry(),
			telemetry.WithTraces(srv.Tracer()), telemetry.WithProfile(srv.ProfileSource()))
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer stopHTTP()
		fmt.Printf("kvserver: metrics on http://%s/metrics (pprof on /debug/pprof/)\n", bound)
		if *traceOn {
			fmt.Printf("kvserver: traces on http://%s/debug/traces (Chrome trace-event JSON)\n", bound)
		}
		if *profileOn {
			fmt.Printf("kvserver: cost profiles on http://%s/debug/profile (watch with eactors-top)\n", bound)
		}
	}
	if *profileOut != "" {
		f, err := os.OpenFile(*profileOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("profile snapshot file: %w", err)
		}
		defer f.Close()
		snap := profile.NewSnapshotter(srv.CostProfile, f, *profileInterval)
		snap.Start()
		defer func() {
			if err := snap.Stop(); err != nil {
				fmt.Fprintln(os.Stderr, "kvserver: profile snapshots:", err)
			}
		}()
		fmt.Printf("kvserver: cost-model snapshots every %s to %s\n", *profileInterval, *profileOut)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		for {
			select {
			case <-sig:
				fmt.Println("\nkvserver: shutting down")
				return nil
			case <-ticker.C:
				st := srv.Stats()
				ss := srv.Store().Stats()
				fmt.Printf("kvserver: gets=%d sets=%d dels=%d not-found=%d errors=%d\n",
					st.Gets, st.Sets, st.Dels, st.NotFound, st.Errors)
				fmt.Printf("kvserver: sessions=%d pipelined=%d replayed=%d\n",
					st.Sessions, st.Pipelined, st.Replayed)
				fmt.Printf("kvserver: cache-hits=%d misses=%d dirty=%d flushes=%d flushed-ops=%d sync-failures=%d\n",
					ss.Hits, ss.Misses, ss.Dirty, ss.Flushes, ss.FlushedOps, ss.SyncFailures)
			}
		}
	}
	<-sig
	fmt.Println("\nkvserver: shutting down")
	return nil
}
