// Command eactors-bench regenerates the paper's evaluation figures
// (Figure 1 and Figures 11-17) plus the KV shard-scaling figure
// (-fig kv). Each figure has a sweep matching the paper's parameters;
// -scale shrinks iteration counts and windows for quick runs on small
// machines.
//
// Usage:
//
//	eactors-bench -fig 1            # Figure 1 (mutex stack)
//	eactors-bench -fig 12 -scale 0.1
//	eactors-bench -all -scale 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/eactors/eactors-go/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eactors-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eactors-bench", flag.ContinueOnError)
	fig := fs.String("fig", "", "figure to reproduce: 1, 11, 12, 13, 14, 15, 16, 17, kv")
	all := fs.Bool("all", false, "run every figure")
	scale := fs.Float64("scale", 1.0, "scale iteration counts and measure windows (1.0 = paper scale)")
	measure := fs.Duration("measure", 0, "override the steady-state measure window of the messaging figures")
	format := fs.String("format", "table", "output format: table or csv")
	telem := fs.Bool("telemetry", false, "enable runtime telemetry on benchmarked deployments (measures the instrumented configuration)")
	switchless := fs.Bool("switchless", false, "service encrypted cross-enclave channels with switchless proxy workers")
	metrics := fs.String("metrics", "", "serve each deployment's telemetry over HTTP at this address while it runs (implies -telemetry)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "table" && *format != "csv" {
		return fmt.Errorf("-format must be table or csv")
	}
	measureOverride = *measure
	bench.Telemetry = *telem || *metrics != ""
	bench.MetricsAddr = *metrics
	bench.Switchless = *switchless
	if !*all && *fig == "" {
		fs.Usage()
		return fmt.Errorf("pass -fig N or -all")
	}
	if *scale <= 0 {
		return fmt.Errorf("-scale must be positive")
	}

	figures := []string{*fig}
	if *all {
		figures = []string{"1", "11", "12", "13", "14", "15", "16", "17", "kv"}
	}

	fmt.Fprintf(os.Stderr, "eactors-bench: GOMAXPROCS=%d scale=%g\n", runtime.GOMAXPROCS(0), *scale)
	var rows []bench.Row
	for _, f := range figures {
		start := time.Now()
		r, err := runFigure(f, *scale)
		if err != nil {
			return fmt.Errorf("figure %s: %w", f, err)
		}
		fmt.Fprintf(os.Stderr, "figure %s done in %v\n", f, time.Since(start).Round(time.Millisecond))
		rows = append(rows, r...)
	}
	if *format == "csv" {
		return bench.WriteCSV(os.Stdout, rows)
	}
	bench.PrintTable(os.Stdout, rows)
	return nil
}

// measureOverride, when non-zero, replaces the scaled measure window of
// the messaging figures.
var measureOverride time.Duration

func measureWindow(scaled time.Duration) time.Duration {
	if measureOverride > 0 {
		return measureOverride
	}
	return scaled
}

// scaleInt shrinks an iteration count, keeping it at least lo.
func scaleInt(n int, scale float64, lo int) int {
	v := int(float64(n) * scale)
	if v < lo {
		return lo
	}
	return v
}

func scaleDur(d time.Duration, scale float64, lo time.Duration) time.Duration {
	v := time.Duration(float64(d) * scale)
	if v < lo {
		return lo
	}
	return v
}

// scaleClients shrinks a client sweep proportionally, deduplicating.
func scaleClients(clients []int, scale float64) []int {
	out := make([]int, 0, len(clients))
	last := -1
	for _, c := range clients {
		v := scaleInt(c, scale, 4)
		if v%2 != 0 {
			v++
		}
		if v != last {
			out = append(out, v)
			last = v
		}
	}
	return out
}

func runFigure(fig string, scale float64) ([]bench.Row, error) {
	switch strings.TrimPrefix(fig, "fig") {
	case "1":
		cfg := bench.DefaultFig1()
		cfg.Elements = scaleInt(cfg.Elements, scale, 1000)
		return bench.Fig1MutexStack(cfg)
	case "11":
		cfg := bench.DefaultFig11()
		cfg.Pairs = scaleInt(cfg.Pairs, scale, 100)
		return bench.Fig11PingPong(cfg)
	case "12", "13":
		cfg := bench.DefaultSMC(fig == "13" || fig == "fig13")
		cfg.Rounds = scaleInt(cfg.Rounds, scale, 50)
		return bench.FigSMC(cfg)
	case "14":
		cfg := bench.DefaultFig14()
		cfg.Clients = scaleClients(cfg.Clients, scale)
		cfg.Measure = measureWindow(scaleDur(cfg.Measure, scale, time.Second))
		return bench.Fig14Scalability(cfg)
	case "15":
		cfg := bench.DefaultFig15()
		cfg.Participants = scaleClients(cfg.Participants, scale)
		cfg.Measure = measureWindow(scaleDur(cfg.Measure, scale, time.Second))
		return bench.Fig15GroupChat(cfg)
	case "16":
		cfg := bench.DefaultFig16()
		cfg.Clients = scaleInt(cfg.Clients, scale, 8)
		cfg.Measure = measureWindow(scaleDur(cfg.Measure, scale, time.Second))
		return bench.Fig16EnclaveCount(cfg)
	case "17":
		cfg := bench.DefaultFig17()
		cfg.Clients = scaleInt(cfg.Clients, scale, 8)
		cfg.Measure = measureWindow(scaleDur(cfg.Measure, scale, time.Second))
		return bench.Fig17TrustedOverhead(cfg)
	case "kv":
		cfg := bench.DefaultFigKV()
		cfg.Keys = scaleInt(cfg.Keys, scale, 256)
		cfg.Measure = measureWindow(scaleDur(cfg.Measure, scale, time.Second))
		return bench.FigKVShardScaling(cfg)
	default:
		return nil, fmt.Errorf("unknown figure %q", fig)
	}
}
