package main

import (
	"testing"
	"time"
)

func TestScaleInt(t *testing.T) {
	if got := scaleInt(1000, 0.5, 1); got != 500 {
		t.Fatalf("scaleInt = %d", got)
	}
	if got := scaleInt(1000, 0.0001, 50); got != 50 {
		t.Fatalf("floor not applied: %d", got)
	}
}

func TestScaleDur(t *testing.T) {
	if got := scaleDur(10*time.Second, 0.5, time.Second); got != 5*time.Second {
		t.Fatalf("scaleDur = %v", got)
	}
	if got := scaleDur(10*time.Second, 0.001, time.Second); got != time.Second {
		t.Fatalf("floor not applied: %v", got)
	}
}

func TestScaleClients(t *testing.T) {
	got := scaleClients([]int{100, 200, 1000}, 0.1)
	want := []int{10, 20, 100}
	if len(got) != len(want) {
		t.Fatalf("scaleClients = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scaleClients = %v, want %v", got, want)
		}
	}
	// Deduplication and even-rounding at tiny scales.
	got = scaleClients([]int{100, 200, 300}, 0.001)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("tiny scaleClients = %v", got)
	}
}

func TestMeasureWindow(t *testing.T) {
	measureOverride = 0
	if got := measureWindow(3 * time.Second); got != 3*time.Second {
		t.Fatalf("no-override = %v", got)
	}
	measureOverride = 7 * time.Second
	defer func() { measureOverride = 0 }()
	if got := measureWindow(3 * time.Second); got != 7*time.Second {
		t.Fatalf("override = %v", got)
	}
}

func TestRunFigureUnknown(t *testing.T) {
	if _, err := runFigure("99", 1); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunFigure1Tiny(t *testing.T) {
	rows, err := runFigure("1", 0.000001)
	if err != nil {
		t.Fatalf("runFigure(1): %v", err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16 (8 thread counts x 2 series)", len(rows))
	}
}

func TestRunArgValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing -fig accepted")
	}
	if err := run([]string{"-fig", "1", "-scale", "-1"}); err == nil {
		t.Fatal("negative scale accepted")
	}
}
