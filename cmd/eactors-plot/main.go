// Command eactors-plot renders CSV sweep output from eactors-bench as
// SVG line charts, one per figure — regenerating the paper's figures as
// images.
//
// Usage:
//
//	eactors-bench -fig 14 -format csv > fig14.csv
//	eactors-plot -in fig14.csv -out ./figures
//	eactors-plot -in fig14.csv -out ./figures -log fig14,fig1
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/eactors/eactors-go/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "eactors-plot:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "-", "input CSV (default stdin)")
	out := flag.String("out", ".", "output directory for SVG files")
	logFigs := flag.String("log", "fig1,fig14", "comma-separated figures plotted with log-scale y")
	flag.Parse()

	var rows []bench.Row
	var err error
	if *in == "-" {
		rows, err = bench.ParseCSV(os.Stdin)
	} else {
		f, ferr := os.Open(*in)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		rows, err = bench.ParseCSV(f)
	}
	if err != nil {
		return err
	}

	logSet := map[string]bool{}
	for _, f := range strings.Split(*logFigs, ",") {
		logSet[strings.TrimSpace(f)] = true
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, figure := range bench.Figures(rows) {
		path := filepath.Join(*out, figure+".svg")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = bench.RenderSVG(f, figure, rows, bench.PlotOptions{LogY: logSet[figure]})
		closeErr := f.Close()
		if err != nil {
			return fmt.Errorf("render %s: %w", figure, err)
		}
		if closeErr != nil {
			return closeErr
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
