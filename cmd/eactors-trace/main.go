// Command eactors-trace attaches to a running EActors server's trace
// endpoint (telemetry.Serve with WithTraces — kvserver/xmppserver
// -metrics -trace) and prints sampled causal traces as per-hop latency
// breakdowns.
//
// Usage:
//
//	eactors-trace -addr http://127.0.0.1:9090 -n 5
//	eactors-trace -addr http://127.0.0.1:9090 -n 20 -wait 30s -o out.json
//
// It polls /debug/traces until it has seen -n distinct traces (or -wait
// expires), then prints the most recent ones, newest first. With -o
// (alias -json) the raw Chrome trace-event snapshot is also saved for
// chrome://tracing / Perfetto.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/eactors/eactors-go/internal/pollclient"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "eactors-trace:", err)
		os.Exit(1)
	}
}

// chromeEvent is one "X" event of the server's Chrome trace-event JSON.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // µs
	Dur  float64 `json:"dur"` // µs
	Tid  int     `json:"tid"` // worker+1; 0 = system
	Args struct {
		Trace  uint64 `json:"trace"`
		Span   uint32 `json:"span"`
		Parent uint32 `json:"parent"`
		Ref    uint32 `json:"ref"`
	} `json:"args"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

func run() error {
	addr := flag.String("addr", "http://127.0.0.1:9090", "server metrics base URL, or a full /debug/traces URL")
	n := flag.Int("n", 5, "number of distinct traces to sample")
	wait := flag.Duration("wait", 10*time.Second, "how long to poll for new traces before settling for what arrived")
	every := flag.Duration("every", 250*time.Millisecond, "poll interval")
	var out string
	flag.StringVar(&out, "o", "", "also write the final raw snapshot to this file (Chrome trace-event JSON)")
	flag.StringVar(&out, "json", "", "alias of -o")
	flag.Parse()

	url := pollclient.URL(*addr, "/debug/traces")

	// Poll until n distinct traces were observed or the wait expires.
	// Each snapshot is complete (the server rings never forget until
	// overwritten), so only the final body needs keeping.
	var body []byte
	traces := map[uint64][]chromeEvent{}
	deadline := time.Now().Add(*wait)
	for {
		b, err := pollclient.Get(url)
		if err != nil {
			return err
		}
		body = b
		var tr chromeTrace
		if err := json.Unmarshal(body, &tr); err != nil {
			return fmt.Errorf("parsing %s: %w", url, err)
		}
		traces = map[uint64][]chromeEvent{}
		for _, ev := range tr.TraceEvents {
			if ev.Ph != "X" || ev.Args.Trace == 0 {
				continue
			}
			traces[ev.Args.Trace] = append(traces[ev.Args.Trace], ev)
		}
		if len(traces) >= *n || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(*every)
	}
	if len(traces) == 0 {
		return fmt.Errorf("no sampled traces at %s (is the server running with tracing enabled?)", url)
	}

	if out != "" {
		if err := pollclient.WriteArtifact(out, body); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "eactors-trace: snapshot saved to %s\n", out)
	}

	ids := make([]uint64, 0, len(traces))
	for id := range traces {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return start(traces[ids[i]]) > start(traces[ids[j]]) })
	if len(ids) > *n {
		ids = ids[:*n]
	}
	fmt.Printf("%d traces sampled, showing %d (newest first)\n", len(traces), len(ids))
	for _, id := range ids {
		printTrace(id, traces[id])
	}
	return nil
}

// start returns the trace's earliest event timestamp in µs.
func start(evs []chromeEvent) float64 {
	s := evs[0].Ts
	for _, ev := range evs[1:] {
		if ev.Ts < s {
			s = ev.Ts
		}
	}
	return s
}

// printTrace renders one trace as a per-hop latency breakdown: every
// span with its offset from the trace root, its share of the critical
// path (end-to-end wall time), and the worker that recorded it.
func printTrace(id uint64, evs []chromeEvent) {
	sort.Slice(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	root := evs[0].Ts
	var end float64
	for _, ev := range evs {
		if e := ev.Ts + ev.Dur; e > end {
			end = e
		}
	}
	total := end - root
	fmt.Printf("\ntrace %d — %d hops, %s end to end\n", id, len(evs), us(total))
	for _, ev := range evs {
		worker := "system"
		if ev.Tid > 0 {
			worker = fmt.Sprintf("worker %d", ev.Tid-1)
		}
		share := 0.0
		if total > 0 {
			share = 100 * ev.Dur / total
		}
		fmt.Printf("  +%-10s %-32s %-9s %10s  %5.1f%%\n",
			us(ev.Ts-root), ev.Name, worker, us(ev.Dur), share)
	}
}

// us renders a µs quantity compactly.
func us(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.3fs", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3fms", v/1e3)
	default:
		return fmt.Sprintf("%.1fµs", v)
	}
}
