// Command xmppload drives the paper's messaging workloads against any
// server speaking the XMPP subset (the EActors service or a baseline)
// and reports throughput plus latency percentiles — the libstrophe
// client driver of Section 6.4, as a standalone tool.
//
// Usage:
//
//	xmppload -server 127.0.0.1:5222 -clients 100 -duration 30s
//	xmppload -server 127.0.0.1:5222 -group room1 -clients 50 -duration 30s
//	xmppload -server 127.0.0.1:5269 -s2s -depth 32 -clients 4 -duration 30s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/eactors/eactors-go/internal/fdlimit"
	"github.com/eactors/eactors-go/internal/transport"
	"github.com/eactors/eactors-go/internal/xmpp"
	"github.com/eactors/eactors-go/internal/xmpp/client"
	"github.com/eactors/eactors-go/internal/xmpp/stanza"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xmppload:", err)
		os.Exit(1)
	}
}

// latencyRecorder collects request latencies for percentile reporting.
type latencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

func (r *latencyRecorder) record(d time.Duration) {
	r.mu.Lock()
	if len(r.samples) < 1_000_000 {
		r.samples = append(r.samples, d)
	}
	r.mu.Unlock()
}

func (r *latencyRecorder) percentile(p float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func (r *latencyRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

func run() error {
	server := flag.String("server", "", "server address (required)")
	clients := flag.Int("clients", 10, "concurrent clients (half send, half receive in O2O mode)")
	duration := flag.Duration("duration", 10*time.Second, "measure window")
	warmup := flag.Duration("warmup", time.Second, "warmup before measuring")
	group := flag.String("group", "", "group-chat room: all clients join it, one sends")
	payload := flag.Int("payload", 150, "message payload bytes")
	s2s := flag.Bool("s2s", false, "drive a framed server-to-server federation endpoint instead of the client protocol")
	depth := flag.Int("depth", 32, "stanzas kept in flight per federation link (with -s2s)")
	idleConns := flag.Int("idle-conns", 0, "idle connections held open for the whole run (readiness-loop scaling ballast)")
	flag.BoolVar(&jsonOut, "json", false, "print the results as one JSON object on stdout (progress goes to stderr)")
	flag.Parse()
	if *server == "" {
		return fmt.Errorf("-server is required")
	}

	// With -json, stdout carries exactly one JSON object; everything
	// else goes to stderr so scripted sweeps can pipe straight into jq.
	if jsonOut {
		info = os.Stderr
	}
	if limit, err := fdlimit.Raise(); err != nil {
		fmt.Fprintf(info, "xmppload: fd limit %d (raise failed: %v)\n", limit, err)
	} else if limit > 0 {
		fmt.Fprintf(info, "xmppload: fd limit %d\n", limit)
	}
	if *idleConns > 0 {
		closeIdle, err := openIdleConns(*server, *idleConns)
		if err != nil {
			return err
		}
		defer closeIdle()
		fmt.Fprintf(info, "xmppload: holding %d idle connections\n", *idleConns)
	}
	if *s2s {
		return runS2S(*server, *clients, *depth, *payload, *warmup, *duration)
	}
	if *group != "" {
		return runGroup(*server, *group, *clients, *payload, *warmup, *duration)
	}
	return runO2O(*server, *clients, *payload, *warmup, *duration)
}

// runS2S pumps stanzas over framed federation links, each keeping a
// sliding ring of depth un-acked stanzas in flight — the s2s face of
// the pipelining depth sweep.
func runS2S(server string, links, depth, payloadBytes int, warmup, duration time.Duration) error {
	if links < 1 {
		links = 1
	}
	if depth < 1 {
		depth = 1
	}
	payload := makePayload(payloadBytes)
	fmt.Fprintf(info, "xmppload: s2s against %s, %d links x depth %d, %v warmup + %v measure\n",
		server, links, depth, warmup, duration)

	var acked, errs atomic.Uint64
	var measuring atomic.Bool
	rec := &latencyRecorder{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for id := 0; id < links; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			link, err := xmpp.DialS2S(server, 10*time.Second)
			if err != nil {
				errs.Add(1)
				return
			}
			defer link.Close()
			xml := []byte(stanza.Message(fmt.Sprintf("load-%d@remote", id), "peer@local", payload))
			type slot struct {
				c     *transport.Call
				start time.Time
			}
			ring := make([]slot, 0, depth)
			reap := func(s slot) {
				if err := link.WaitAck(s.c); err != nil {
					errs.Add(1)
					return
				}
				if measuring.Load() {
					acked.Add(1)
					rec.record(time.Since(s.start))
				}
			}
			defer func() {
				for _, s := range ring {
					reap(s)
				}
			}()
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				c, err := link.IssueStanza(xml)
				if err != nil {
					errs.Add(1)
					return
				}
				ring = append(ring, slot{c: c, start: start})
				if len(ring) == depth {
					reap(ring[0])
					copy(ring, ring[1:])
					ring = ring[:len(ring)-1]
				}
			}
		}(id)
	}

	time.Sleep(warmup)
	measuring.Store(true)
	time.Sleep(duration)
	measuring.Store(false)
	close(stop)
	wg.Wait()

	total := acked.Load()
	if jsonOut {
		return emitJSON("s2s", total, duration, float64(total)/duration.Seconds(), errs.Load(), links, depth, rec)
	}
	fmt.Printf("throughput: %.0f stanzas/s (%d acked, %d errors)\n",
		float64(total)/duration.Seconds(), total, errs.Load())
	fmt.Printf("latency:    p50=%v p95=%v p99=%v (%d samples)\n",
		rec.percentile(0.50).Round(time.Microsecond),
		rec.percentile(0.95).Round(time.Microsecond),
		rec.percentile(0.99).Round(time.Microsecond),
		rec.count())
	return nil
}

// openIdleConns dials and holds count idle TCP connections — ballast
// for measuring how the server scales with mostly-idle fan-in (the
// readiness-loop sweep in EXPERIMENTS.md). The connections never
// handshake, so they sit in the CONNECTOR's await phase, watched by
// its READER. Returns a closer.
func openIdleConns(server string, count int) (func(), error) {
	conns := make([]net.Conn, 0, count)
	closeAll := func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}
	for i := 0; i < count; i++ {
		c, err := net.DialTimeout("tcp", server, 10*time.Second)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("idle conn %d/%d: %w", i, count, err)
		}
		conns = append(conns, c)
	}
	return closeAll, nil
}

func makePayload(n int) string {
	const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rand.Intn(len(letters))]
	}
	return string(b)
}

func runO2O(server string, clients, payloadBytes int, warmup, duration time.Duration) error {
	if clients%2 != 0 {
		clients++
	}
	pairs := clients / 2
	payload := makePayload(payloadBytes)

	fmt.Fprintf(info, "xmppload: O2O against %s, %d clients (%d pairs), %v warmup + %v measure\n",
		server, clients, pairs, warmup, duration)

	receivers := make([]*client.Client, pairs)
	senders := make([]*client.Client, pairs)
	for i := 0; i < pairs; i++ {
		var err error
		if receivers[i], err = client.Dial(server, fmt.Sprintf("load-recv-%d", i), 30*time.Second); err != nil {
			return fmt.Errorf("dial receiver %d: %w", i, err)
		}
		defer receivers[i].Close()
	}
	for i := 0; i < pairs; i++ {
		var err error
		if senders[i], err = client.Dial(server, fmt.Sprintf("load-send-%d", i), 30*time.Second); err != nil {
			return fmt.Errorf("dial sender %d: %w", i, err)
		}
		defer senders[i].Close()
	}

	var completed atomic.Uint64
	var measuring atomic.Bool
	rec := &latencyRecorder{}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for _, c := range receivers {
		wg.Add(1)
		go func(c *client.Client) {
			defer wg.Done()
			for {
				msg, err := c.ReadMessage(500 * time.Millisecond)
				if err != nil {
					select {
					case <-stop:
						return
					default:
						continue
					}
				}
				_ = c.SendMessage(msg.From, msg.Body) //sendcheck:ok
			}
		}(c)
	}
	for i, c := range senders {
		wg.Add(1)
		go func(idx int, c *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(idx + 1)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				target := fmt.Sprintf("load-recv-%d", rng.Intn(pairs))
				start := time.Now()
				if err := c.SendMessage(target, payload); err != nil {
					return
				}
				if _, err := c.ReadMessage(5 * time.Second); err != nil {
					continue
				}
				if measuring.Load() {
					completed.Add(1)
					rec.record(time.Since(start))
				}
			}
		}(i, c)
	}

	time.Sleep(warmup)
	measuring.Store(true)
	time.Sleep(duration)
	measuring.Store(false)
	close(stop)
	wg.Wait()

	total := completed.Load()
	if jsonOut {
		return emitJSON("o2o", total, duration, float64(total)/duration.Seconds(), 0, clients, 0, rec)
	}
	fmt.Printf("throughput: %.0f req/s (%d requests in %v)\n",
		float64(total)/duration.Seconds(), total, duration)
	fmt.Printf("latency:    p50=%v p95=%v p99=%v (%d samples)\n",
		rec.percentile(0.50).Round(time.Microsecond),
		rec.percentile(0.95).Round(time.Microsecond),
		rec.percentile(0.99).Round(time.Microsecond),
		rec.count())
	return nil
}

func runGroup(server, room string, members, payloadBytes int, warmup, duration time.Duration) error {
	if members < 2 {
		members = 2
	}
	payload := makePayload(payloadBytes)
	fmt.Fprintf(info, "xmppload: group %q against %s, %d members, %v warmup + %v measure\n",
		room, server, members, warmup, duration)

	clients := make([]*client.Client, members)
	for i := range clients {
		var err error
		if clients[i], err = client.Dial(server, fmt.Sprintf("load-member-%d", i), 30*time.Second); err != nil {
			return fmt.Errorf("dial member %d: %w", i, err)
		}
		defer clients[i].Close()
		if err := clients[i].JoinRoom(room); err != nil {
			return err
		}
	}
	time.Sleep(300 * time.Millisecond)

	var delivered atomic.Uint64
	var measuring atomic.Bool
	rec := &latencyRecorder{}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for _, c := range clients[2:] {
		wg.Add(1)
		go func(c *client.Client) {
			defer wg.Done()
			for {
				if _, err := c.ReadMessage(500 * time.Millisecond); err != nil {
					select {
					case <-stop:
						return
					default:
					}
				} else if measuring.Load() {
					delivered.Add(1)
				}
			}
		}(c)
	}
	sender, monitor := clients[0], clients[1]
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			start := time.Now()
			if err := sender.SendGroupMessage(room, payload); err != nil {
				return
			}
			if _, err := monitor.ReadMessage(5 * time.Second); err != nil {
				continue
			}
			if measuring.Load() {
				delivered.Add(1)
				rec.record(time.Since(start))
			}
		}
	}()

	time.Sleep(warmup)
	measuring.Store(true)
	time.Sleep(duration)
	measuring.Store(false)
	close(stop)
	wg.Wait()

	total := delivered.Load()
	perReq := float64(total) / float64(members-1)
	if jsonOut {
		return emitJSON("group", total, duration, perReq/duration.Seconds(), 0, members, 0, rec)
	}
	fmt.Printf("throughput: %.0f group msg/s (%d deliveries to %d members)\n",
		perReq/duration.Seconds(), total, members-1)
	fmt.Printf("first-delivery latency: p50=%v p95=%v p99=%v\n",
		rec.percentile(0.50).Round(time.Microsecond),
		rec.percentile(0.95).Round(time.Microsecond),
		rec.percentile(0.99).Round(time.Microsecond))
	return nil
}

// jsonOut and info implement the -json results contract: with -json,
// stdout is exactly one loadResult object and progress goes to stderr.
var (
	jsonOut bool
	info    io.Writer = os.Stdout
)

// loadResult matches kvload's -json schema: throughput plus latency
// percentiles, all durations in nanoseconds.
type loadResult struct {
	Tool       string  `json:"tool"`
	Mode       string  `json:"mode,omitempty"`
	Ops        uint64  `json:"ops"`
	DurationNs int64   `json:"duration_ns"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Errors     uint64  `json:"errors"`
	Clients    int     `json:"clients"`
	Depth      int     `json:"depth,omitempty"`
	P50Ns      int64   `json:"p50_ns"`
	P95Ns      int64   `json:"p95_ns"`
	P99Ns      int64   `json:"p99_ns"`
}

func emitJSON(mode string, ops uint64, duration time.Duration, opsPerSec float64, errs uint64, clients, depth int, rec *latencyRecorder) error {
	return json.NewEncoder(os.Stdout).Encode(loadResult{
		Tool:       "xmppload",
		Mode:       mode,
		Ops:        ops,
		DurationNs: duration.Nanoseconds(),
		OpsPerSec:  opsPerSec,
		Errors:     errs,
		Clients:    clients,
		Depth:      depth,
		P50Ns:      rec.percentile(0.50).Nanoseconds(),
		P95Ns:      rec.percentile(0.95).Nanoseconds(),
		P99Ns:      rec.percentile(0.99).Nanoseconds(),
	})
}
