// Command xmppclient is an interactive client for the EActors messaging
// service (and the baseline servers — they speak the same subset).
//
// Usage:
//
//	xmppclient -server 127.0.0.1:5222 -user alice
//
// Commands at the prompt:
//
//	/msg <user> <text>     send a one-to-one message
//	/join <room>           join a group chat
//	/leave <room>          leave a group chat
//	/room <room> <text>    send a (service-re-encrypted) group message
//	/ping                  ping the service
//	/who <user>            ask whether a user is online
//	/quit                  close the stream and exit
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/eactors/eactors-go/internal/xmpp/client"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xmppclient:", err)
		os.Exit(1)
	}
}

func run() error {
	server := ""
	user := ""
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-server":
			i++
			if i < len(args) {
				server = args[i]
			}
		case "-user":
			i++
			if i < len(args) {
				user = args[i]
			}
		default:
			return fmt.Errorf("unknown argument %q", args[i])
		}
	}
	if server == "" || user == "" {
		return fmt.Errorf("usage: xmppclient -server host:port -user name")
	}

	c, err := client.Dial(server, user, 10*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Printf("connected to %s as %s\n", server, user)

	// Receiver loop.
	go func() {
		for {
			msg, err := c.ReadMessage(0)
			if err != nil {
				fmt.Println("\n[connection closed]")
				os.Exit(0)
			}
			if msg.Group {
				fmt.Printf("\r[%s] %s: %s\n> ", msg.To, msg.From, msg.Body)
			} else {
				fmt.Printf("\r%s: %s\n> ", msg.From, msg.Body)
			}
		}
	}()

	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			fmt.Print("> ")
			continue
		}
		if err := handle(c, line); err != nil {
			if err == errQuit {
				return nil
			}
			fmt.Println("error:", err)
		}
		fmt.Print("> ")
	}
	return scanner.Err()
}

var errQuit = fmt.Errorf("quit")

func handle(c *client.Client, line string) error {
	fields := strings.SplitN(line, " ", 3)
	switch fields[0] {
	case "/msg":
		if len(fields) < 3 {
			return fmt.Errorf("usage: /msg <user> <text>")
		}
		return c.SendMessage(fields[1], fields[2])
	case "/join":
		if len(fields) < 2 {
			return fmt.Errorf("usage: /join <room>")
		}
		return c.JoinRoom(fields[1])
	case "/leave":
		if len(fields) < 2 {
			return fmt.Errorf("usage: /leave <room>")
		}
		return c.LeaveRoom(fields[1])
	case "/room":
		if len(fields) < 3 {
			return fmt.Errorf("usage: /room <room> <text>")
		}
		return c.SendGroupMessage(fields[1], fields[2])
	case "/ping":
		start := time.Now()
		if err := c.Ping(5 * time.Second); err != nil {
			return err
		}
		fmt.Printf("pong in %v\n", time.Since(start).Round(time.Microsecond))
		return nil
	case "/who":
		if len(fields) < 2 {
			return fmt.Errorf("usage: /who <user>")
		}
		online, err := c.QueryOnline(fields[1], 5*time.Second)
		if err != nil {
			return err
		}
		state := "offline"
		if online {
			state = "online"
		}
		fmt.Printf("%s is %s\n", fields[1], state)
		return nil
	case "/quit":
		return errQuit
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
}
