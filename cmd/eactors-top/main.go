// Command eactors-top attaches to a running EActors server's cost-model
// endpoint (telemetry.Serve with WithProfile — kvserver/xmppserver
// -metrics -profile) and renders a live per-actor cost table: body CPU,
// message rates, enclave crossings, seal bandwidth, mailbox dwell, the
// hottest actor-to-actor communication edges, and per-enclave EPC
// attribution.
//
// Usage:
//
//	eactors-top -addr http://127.0.0.1:9090
//	eactors-top -addr 127.0.0.1:9090 -interval 2s -rows 20
//	eactors-top -addr 127.0.0.1:9090 -once -o snapshot.json
//
// The first frame shows cumulative totals; every later frame shows
// rates over the refresh window. With -once it prints a single frame
// and exits (CI-friendly: no terminal control is ever emitted beyond
// the clear between live frames). With -o the latest raw snapshot is
// also saved as JSON for offline analysis or the placement tooling.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/eactors/eactors-go/internal/pollclient"
	"github.com/eactors/eactors-go/internal/profile"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "eactors-top:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "http://127.0.0.1:9090", "server metrics base URL, or a full /debug/profile URL")
	interval := flag.Duration("interval", time.Second, "refresh interval")
	rows := flag.Int("rows", 0, "bound the actor table to the hottest N rows (0 = all)")
	once := flag.Bool("once", false, "print a single frame (cumulative totals) and exit")
	out := flag.String("o", "", "also write the latest raw snapshot to this file (profile JSON)")
	flag.Parse()

	cur, body, err := profile.Fetch(*addr)
	if err != nil {
		return fmt.Errorf("%w (is the server running with -profile?)", err)
	}
	save := func(b []byte) error {
		if *out == "" {
			return nil
		}
		return pollclient.WriteArtifact(*out, b)
	}
	if *once {
		profile.RenderTop(os.Stdout, profile.Model{}, cur, *rows)
		return save(body)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()

	// First frame: totals since server start. Later frames: deltas over
	// the window, rendered as rates.
	fmt.Print("\x1b[2J\x1b[H")
	profile.RenderTop(os.Stdout, profile.Model{}, cur, *rows)
	prev := cur
	for {
		select {
		case <-sig:
			fmt.Println()
			return save(body)
		case <-ticker.C:
			next, b, err := profile.Fetch(*addr)
			if err != nil {
				// Transient poll failures (server restarting, endpoint
				// busy) keep the last frame on screen.
				fmt.Fprintf(os.Stderr, "eactors-top: %v\n", err)
				continue
			}
			body = b
			fmt.Print("\x1b[2J\x1b[H")
			profile.RenderTop(os.Stdout, prev, next, *rows)
			prev = next
		}
	}
}
