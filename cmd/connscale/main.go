// Command connscale is the connection-scaling smoke harness behind the
// connscale-smoke CI job: it launches the real kvserver and xmppserver
// binaries, parks thousands of idle connections on them, and asserts
// that the readiness loop keeps the cost of an idle connection bounded
// — goroutines O(pollers+dispatchers) instead of O(connections), and a
// hard per-connection memory ceiling — while a live workload still
// meets latency parity with the legacy per-connection pumps.
//
// Usage (binaries must be prebuilt; scripts/connscale.sh does both):
//
//	connscale -kvserver bin/kvserver -xmppserver bin/xmppserver -conns 10000
//	connscale -sweep        # full 1k/10k × netloop on/off table (no assertions on legacy rows)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/eactors/eactors-go/internal/fdlimit"
	"github.com/eactors/eactors-go/internal/kv"
	"github.com/eactors/eactors-go/internal/xmpp/client"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "connscale:", err)
		os.Exit(1)
	}
}

type options struct {
	kvserver   string
	xmppserver string
	conns      int
	settle     time.Duration

	goroutineCeiling int
	connMemCeiling   int

	perfConns     int
	perfDuration  time.Duration
	perfTolerance float64
	perfSlack     time.Duration

	sweep    bool
	skipPerf bool
	skipXMPP bool
}

func run() error {
	var o options
	flag.StringVar(&o.kvserver, "kvserver", "bin/kvserver", "kvserver binary")
	flag.StringVar(&o.xmppserver, "xmppserver", "bin/xmppserver", "xmppserver binary")
	flag.IntVar(&o.conns, "conns", 10_000, "idle connections to park on each server")
	flag.DurationVar(&o.settle, "settle", 3*time.Second, "wait after the last idle conn before sampling (write pumps idle out, GC settles)")
	flag.IntVar(&o.goroutineCeiling, "goroutine-ceiling", 128, "max server goroutines with all idle conns parked (netloop mode)")
	flag.IntVar(&o.connMemCeiling, "conn-mem-ceiling", 32<<10, "max RSS bytes per idle connection (netloop mode)")
	flag.IntVar(&o.perfConns, "perf-conns", 100, "concurrent clients for the latency-parity check")
	flag.DurationVar(&o.perfDuration, "perf-duration", 5*time.Second, "measure window for the latency-parity check")
	flag.Float64Var(&o.perfTolerance, "perf-tolerance", 0.10, "allowed relative p99 regression of netloop vs legacy")
	flag.DurationVar(&o.perfSlack, "perf-slack", 2*time.Millisecond, "absolute p99 slack on top of the relative tolerance")
	flag.BoolVar(&o.sweep, "sweep", false, "also measure legacy mode and a 1k-conn point (EXPERIMENTS table; no assertions on extra rows)")
	flag.BoolVar(&o.skipPerf, "skip-perf", false, "skip the latency-parity check")
	flag.BoolVar(&o.skipXMPP, "skip-xmpp", false, "skip the xmppserver half")
	flag.Parse()

	if limit, err := fdlimit.Raise(); err == nil && limit > 0 {
		fmt.Printf("connscale: fd limit %d\n", limit)
	}

	type row struct {
		server, mode    string
		conns           int
		goroutines      int
		rssKB, perConnB int
		p99             time.Duration
	}
	var rows []row
	failures := 0

	measure := func(bin, name string, netloop bool, conns int, assert bool) error {
		srv, err := startServer(bin, name, netloop)
		if err != nil {
			return err
		}
		defer srv.stop()

		base, err := srv.sample()
		if err != nil {
			return err
		}
		idle, err := parkIdleConns(srv.addr, conns)
		if err != nil {
			return err
		}
		defer idle.close()
		time.Sleep(o.settle)

		loaded, err := srv.sample()
		if err != nil {
			return err
		}
		perConn := 0
		if conns > 0 && loaded.rssKB > base.rssKB {
			perConn = (loaded.rssKB - base.rssKB) * 1024 / conns
		}

		// Latency under the parked ballast: a small live workload shares
		// the server with the idle herd.
		var p99 time.Duration
		if !o.skipPerf {
			p99, err = srv.workload(8, 2*time.Second)
			if err != nil {
				return fmt.Errorf("%s workload under %d idle conns: %w", name, conns, err)
			}
		}

		mode := "legacy"
		if netloop {
			mode = "netloop"
		}
		rows = append(rows, row{name, mode, conns, loaded.goroutines, loaded.rssKB, perConn, p99})
		fmt.Printf("connscale: %s %s conns=%d goroutines=%d (baseline %d) rss=%dKB (baseline %dKB) per-conn=%dB p99=%v\n",
			name, mode, conns, loaded.goroutines, base.goroutines, loaded.rssKB, base.rssKB, perConn, p99)

		if assert {
			if loaded.goroutines > o.goroutineCeiling {
				fmt.Printf("connscale: FAIL %s %s: %d goroutines with %d idle conns exceeds ceiling %d — goroutine count is not O(pollers+dispatchers)\n",
					name, mode, loaded.goroutines, conns, o.goroutineCeiling)
				failures++
			}
			if perConn > o.connMemCeiling {
				fmt.Printf("connscale: FAIL %s %s: %dB RSS per idle conn exceeds ceiling %dB\n",
					name, mode, perConn, o.connMemCeiling)
				failures++
			}
		}
		return nil
	}

	servers := []struct {
		bin, name string
	}{{o.kvserver, "kvserver"}}
	if !o.skipXMPP {
		servers = append(servers, struct{ bin, name string }{o.xmppserver, "xmppserver"})
	}
	for _, s := range servers {
		if err := measure(s.bin, s.name, true, o.conns, true); err != nil {
			return err
		}
		if o.sweep {
			if err := measure(s.bin, s.name, true, 1000, false); err != nil {
				return err
			}
			if err := measure(s.bin, s.name, false, 1000, false); err != nil {
				return err
			}
			if err := measure(s.bin, s.name, false, o.conns, false); err != nil {
				return err
			}
		}
	}

	// Latency parity at a live-connection scale both modes handle: the
	// loop must not tax the active path. Re-run once on failure (single
	// measurement p99 is noisy, especially on small CI machines) and
	// keep the best of each side.
	if !o.skipPerf {
		legacyP99, loopP99, err := perfCompare(o)
		if err != nil {
			return err
		}
		limit := time.Duration(float64(legacyP99)*(1+o.perfTolerance)) + o.perfSlack
		if loopP99 > limit {
			fmt.Printf("connscale: p99 parity check flagged (netloop %v vs legacy %v, limit %v); re-running\n",
				loopP99, legacyP99, limit)
			l2, n2, err := perfCompare(o)
			if err != nil {
				return err
			}
			if l2 < legacyP99 {
				legacyP99 = l2
			}
			if n2 < loopP99 {
				loopP99 = n2
			}
			limit = time.Duration(float64(legacyP99)*(1+o.perfTolerance)) + o.perfSlack
		}
		fmt.Printf("connscale: p99 at %d live conns: legacy=%v netloop=%v limit=%v\n",
			o.perfConns, legacyP99, loopP99, limit)
		if loopP99 > limit {
			fmt.Printf("connscale: FAIL netloop p99 %v exceeds legacy %v beyond tolerance\n", loopP99, legacyP99)
			failures++
		}
	}

	fmt.Println("\nconnscale: sweep table")
	fmt.Println("| server | mode | conns | goroutines | RSS (KB) | per-conn (B) | p99 |")
	fmt.Println("|--------|------|-------|------------|----------|--------------|-----|")
	for _, r := range rows {
		fmt.Printf("| %s | %s | %d | %d | %d | %d | %v |\n",
			r.server, r.mode, r.conns, r.goroutines, r.rssKB, r.perConnB, r.p99)
	}

	if failures > 0 {
		return fmt.Errorf("%d assertion(s) failed", failures)
	}
	fmt.Println("connscale: all assertions passed")
	return nil
}

// perfCompare measures workload p99 on a legacy server and a netloop
// server back to back, no idle ballast.
func perfCompare(o options) (legacy, loop time.Duration, err error) {
	for _, netloop := range []bool{false, true} {
		srv, err := startServer(o.kvserver, "kvserver", netloop)
		if err != nil {
			return 0, 0, err
		}
		p99, werr := srv.workload(o.perfConns, o.perfDuration)
		srv.stop()
		if werr != nil {
			return 0, 0, fmt.Errorf("perf workload (netloop=%v): %w", netloop, werr)
		}
		if netloop {
			loop = p99
		} else {
			legacy = p99
		}
	}
	return legacy, loop, nil
}

// server is one running server subprocess.
type server struct {
	name    string
	cmd     *exec.Cmd
	addr    string
	metrics string
}

var (
	listenRE  = regexp.MustCompile(`listening on (\S+)`)
	metricsRE = regexp.MustCompile(`metrics on http://(\S+)/metrics`)
)

// startServer launches bin with an ephemeral listen and metrics port
// and waits for both addresses to appear on its stdout.
func startServer(bin, name string, netloop bool) (*server, error) {
	args := []string{"-listen", "127.0.0.1:0", "-metrics", "127.0.0.1:0", "-stats", "0"}
	if netloop {
		args = append(args, "-netloop")
	}
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", bin, err)
	}
	s := &server{name: name, cmd: cmd}

	addrCh := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(out)
		notified := false
		for sc.Scan() {
			line := sc.Text()
			if m := listenRE.FindStringSubmatch(line); m != nil && s.addr == "" {
				s.addr = m[1]
			}
			if m := metricsRE.FindStringSubmatch(line); m != nil && s.metrics == "" {
				s.metrics = m[1]
			}
			if !notified && s.addr != "" && s.metrics != "" {
				notified = true
				close(addrCh)
			}
		}
		if !notified {
			close(addrCh)
		}
	}()
	select {
	case <-addrCh:
	case <-time.After(30 * time.Second):
	}
	if s.addr == "" || s.metrics == "" {
		s.stop()
		return nil, fmt.Errorf("%s did not report listen+metrics addresses", bin)
	}
	return s, nil
}

func (s *server) stop() {
	if s.cmd.Process != nil {
		_ = s.cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { _, _ = s.cmd.Process.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = s.cmd.Process.Kill()
		}
	}
}

type sample struct {
	goroutines int
	rssKB      int
}

// sample reads the server's goroutine count from its pprof endpoint and
// its RSS from /proc (0 on platforms without procfs).
func (s *server) sample() (sample, error) {
	var out sample
	resp, err := http.Get("http://" + s.metrics + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		return out, fmt.Errorf("%s pprof: %w", s.name, err)
	}
	line, err := bufio.NewReader(resp.Body).ReadString('\n')
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return out, fmt.Errorf("%s pprof read: %w", s.name, err)
	}
	// "goroutine profile: total 42"
	if i := strings.LastIndex(line, "total "); i >= 0 {
		out.goroutines, _ = strconv.Atoi(strings.TrimSpace(line[i+len("total "):]))
	}
	if out.goroutines == 0 {
		return out, fmt.Errorf("%s pprof: unparseable header %q", s.name, strings.TrimSpace(line))
	}
	out.rssKB = rssKB(s.cmd.Process.Pid)
	return out, nil
}

// rssKB reads VmRSS from /proc/pid/status; 0 when unavailable.
func rssKB(pid int) int {
	data, err := os.ReadFile(fmt.Sprintf("/proc/%d/status", pid))
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "VmRSS:") {
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				kb, _ := strconv.Atoi(fields[1])
				return kb
			}
		}
	}
	return 0
}

// idleSet is a herd of parked connections.
type idleSet struct{ conns []net.Conn }

func (is *idleSet) close() {
	for _, c := range is.conns {
		_ = c.Close()
	}
}

// parkIdleConns opens count connections that never send a byte.
func parkIdleConns(addr string, count int) (*idleSet, error) {
	is := &idleSet{conns: make([]net.Conn, 0, count)}
	for i := 0; i < count; i++ {
		c, err := net.DialTimeout("tcp", addr, 10*time.Second)
		if err != nil {
			is.close()
			return nil, fmt.Errorf("idle conn %d/%d: %w", i, count, err)
		}
		is.conns = append(is.conns, c)
	}
	return is, nil
}

// workload runs a closed-loop request workload appropriate for the
// server's protocol and returns the p99 latency.
func (s *server) workload(clients int, duration time.Duration) (time.Duration, error) {
	switch s.name {
	case "kvserver":
		return kvWorkload(s.addr, clients, duration)
	case "xmppserver":
		return xmppWorkload(s.addr, clients, duration)
	}
	return 0, fmt.Errorf("no workload for %s", s.name)
}

func kvWorkload(addr string, clients int, duration time.Duration) (time.Duration, error) {
	var mu sync.Mutex
	var samples []time.Duration
	var firstErr error
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := kv.Dial(addr, 10*time.Second)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer c.Close()
			key := []byte(fmt.Sprintf("scale-key-%d", id))
			val := []byte("connscale-value-0123456789abcdef")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				var err error
				if i%2 == 0 {
					err = c.Set(key, val)
				} else {
					_, _, err = c.Get(key)
				}
				if err != nil {
					continue
				}
				mu.Lock()
				if len(samples) < 500_000 {
					samples = append(samples, time.Since(start))
				}
				mu.Unlock()
			}
		}(w)
	}
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(samples) == 0 {
		if firstErr != nil {
			return 0, firstErr
		}
		return 0, fmt.Errorf("kv workload produced no samples")
	}
	return percentile(samples, 0.99), nil
}

func xmppWorkload(addr string, clients int, duration time.Duration) (time.Duration, error) {
	pairs := clients / 2
	if pairs == 0 {
		pairs = 1
	}
	var mu sync.Mutex
	var samples []time.Duration
	var firstErr error
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			fail := func(err error) {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
			recvName := fmt.Sprintf("scale-recv-%d", p)
			recv, err := client.Dial(addr, recvName, 30*time.Second)
			if err != nil {
				fail(err)
				return
			}
			defer recv.Close()
			send, err := client.Dial(addr, fmt.Sprintf("scale-send-%d", p), 30*time.Second)
			if err != nil {
				fail(err)
				return
			}
			defer send.Close()
			go func() {
				for {
					msg, err := recv.ReadMessage(500 * time.Millisecond)
					if err != nil {
						select {
						case <-stop:
							return
						default:
							continue
						}
					}
					_ = recv.SendMessage(msg.From, msg.Body) //sendcheck:ok
				}
			}()
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				if err := send.SendMessage(recvName, "connscale ping"); err != nil {
					return
				}
				if _, err := send.ReadMessage(5 * time.Second); err != nil {
					continue
				}
				mu.Lock()
				if len(samples) < 500_000 {
					samples = append(samples, time.Since(start))
				}
				mu.Unlock()
			}
		}(p)
	}
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(samples) == 0 {
		if firstErr != nil {
			return 0, firstErr
		}
		return 0, fmt.Errorf("xmpp workload produced no samples")
	}
	return percentile(samples, 0.99), nil
}

func percentile(samples []time.Duration, p float64) time.Duration {
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(p*float64(len(sorted)-1))]
}
