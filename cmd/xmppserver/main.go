// Command xmppserver runs the EActors secure instant-messaging service
// (Section 5.1 of the paper): an enclaved CONNECTOR, N enclaved XMPP
// shards with untrusted READER/WRITER networking eactors, O2O routing
// and per-member re-encrypted group chats.
//
// Usage:
//
//	xmppserver -listen 127.0.0.1:5222 -shards 4 -trusted -enclaves 4
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"crypto/rand"

	"github.com/eactors/eactors-go/internal/netloop"
	"github.com/eactors/eactors-go/internal/pos"
	"github.com/eactors/eactors-go/internal/profile"
	"github.com/eactors/eactors-go/internal/telemetry"
	"github.com/eactors/eactors-go/internal/xmpp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xmppserver:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:5222", "TCP listen address")
	shards := flag.Int("shards", 1, "number of XMPP eactors")
	trusted := flag.Bool("trusted", true, "run CONNECTOR and XMPP eactors inside enclaves")
	switchless := flag.Bool("switchless", false, "service encrypted channels with switchless proxy workers (needs -trusted)")
	enclaves := flag.Int("enclaves", 1, "number of enclaves hosting the XMPP eactors (when trusted)")
	rooms := flag.String("rooms", "", "comma-separated group chats confined to dedicated enclaves")
	netloopOn := flag.Bool("netloop", false, "multiplex connection reads through the event-driven readiness loop (O(pollers+dispatchers) goroutines instead of one per connection)")
	netloopPollers := flag.Int("netloop-pollers", 1, "readiness-loop poller goroutines (with -netloop)")
	netloopDispatchers := flag.Int("netloop-dispatchers", 4, "readiness-loop dispatcher goroutines (with -netloop)")
	statsEvery := flag.Duration("stats", 10*time.Second, "stats reporting interval (0 = off)")
	metrics := flag.String("metrics", "", "serve telemetry over HTTP at this address, e.g. :9090 (enables telemetry)")
	traceOn := flag.Bool("trace", false, "enable sampled causal tracing (exported on /debug/traces when -metrics is set)")
	traceSample := flag.Int("trace-sample", 0, "root one trace per this many inbound bursts (0 = default 64)")
	profileOn := flag.Bool("profile", false, "enable per-actor cost accounting (exported on /debug/profile when -metrics is set; see eactors-top)")
	profileSample := flag.Int("profile-sample", 0, "measure one in this many seal/open operations (0 = default 16)")
	profileOut := flag.String("profile-out", "", "append periodic cost-model snapshots to this JSONL file (enables -profile)")
	profileInterval := flag.Duration("profile-interval", 5*time.Second, "snapshot period for -profile-out")
	directory := flag.Bool("directory", true, "keep the online directory in a sealed persistent object store (the paper's Section 5.1 design)")
	s2s := flag.String("s2s", "", "also accept framed server-to-server federation links on this address, e.g. 127.0.0.1:5269 (empty = off)")
	domain := flag.String("domain", "localhost", "local domain announced on federation links (with -s2s)")
	flag.Parse()
	if *profileOut != "" {
		*profileOn = true
	}

	var dedicated []string
	if *rooms != "" {
		dedicated = strings.Split(*rooms, ",")
	}
	var dirStore *pos.Store
	if *directory {
		// The online directory is ephemeral per boot, so a fresh sealing
		// key each start is correct.
		var key [32]byte
		if _, err := rand.Read(key[:]); err != nil {
			return err
		}
		var err error
		if dirStore, err = pos.Open(pos.Options{SizeBytes: 8 << 20, EncryptionKey: &key}); err != nil {
			return fmt.Errorf("directory store: %w", err)
		}
		defer dirStore.Close()
	}
	srv, err := xmpp.Start(xmpp.Options{
		ListenAddr:         *listen,
		Shards:             *shards,
		Trusted:            *trusted,
		Switchless:         *switchless,
		EnclaveCount:       *enclaves,
		DedicatedRooms:     dedicated,
		DirectoryStore:     dirStore,
		Telemetry:          *metrics != "",
		Trace:              *traceOn,
		TraceSampleEvery:   *traceSample,
		Profile:            *profileOn,
		ProfileSampleEvery: *profileSample,
		NetLoop: netloop.Config{
			Enabled:     *netloopOn,
			Pollers:     *netloopPollers,
			Dispatchers: *netloopDispatchers,
		},
	})
	if err != nil {
		return err
	}
	defer srv.Stop()
	fmt.Printf("xmppserver: listening on %s (shards=%d trusted=%v enclaves=%d switchless=%v netloop=%v)\n",
		srv.Addr(), *shards, *trusted, *enclaves, *switchless && *trusted, *netloopOn)
	var s2sSrv *xmpp.S2SServer
	if *s2s != "" {
		if s2sSrv, err = xmpp.ListenS2S(*s2s, *domain, xmpp.S2SOptions{}); err != nil {
			return fmt.Errorf("s2s listener: %w", err)
		}
		defer s2sSrv.Close()
		fmt.Printf("xmppserver: s2s federation on %s (domain %q, framed transport)\n", s2sSrv.Addr(), *domain)
	}
	if *metrics != "" {
		bound, stopHTTP, err := telemetry.Serve(*metrics, srv.Telemetry(),
			telemetry.WithTraces(srv.Tracer()), telemetry.WithProfile(srv.ProfileSource()))
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer stopHTTP()
		fmt.Printf("xmppserver: metrics on http://%s/metrics (pprof on /debug/pprof/)\n", bound)
		if *traceOn {
			fmt.Printf("xmppserver: traces on http://%s/debug/traces (Chrome trace-event JSON)\n", bound)
		}
		if *profileOn {
			fmt.Printf("xmppserver: cost profiles on http://%s/debug/profile (watch with eactors-top)\n", bound)
		}
	}
	if *profileOut != "" {
		f, err := os.OpenFile(*profileOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("profile snapshot file: %w", err)
		}
		defer f.Close()
		snap := profile.NewSnapshotter(srv.CostProfile, f, *profileInterval)
		snap.Start()
		defer func() {
			if err := snap.Stop(); err != nil {
				fmt.Fprintln(os.Stderr, "xmppserver: profile snapshots:", err)
			}
		}()
		fmt.Printf("xmppserver: cost-model snapshots every %s to %s\n", *profileInterval, *profileOut)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		for {
			select {
			case <-sig:
				fmt.Println("\nxmppserver: shutting down")
				return nil
			case <-ticker.C:
				st := srv.Stats()
				report := srv.Runtime().Report()
				fmt.Printf("xmppserver: online=%d connections=%d routed=%d group-fanout=%d auth-failures=%d\n",
					srv.Online().Len(), st.Connections, st.Routed, st.GroupFanout, st.AuthFailures)
				fmt.Printf("xmppserver: crossings=%d epc-evictions=%d pool-free=%d failed-actors=%v\n",
					report.Platform.Crossings, report.Platform.EvictedPages,
					report.PublicPoolFree, report.FailedActors)
				if s2sSrv != nil {
					fs := s2sSrv.Stats()
					fmt.Printf("xmppserver: s2s links=%d stanzas=%d rejected=%d\n", fs.Links, fs.Stanzas, fs.Rejected)
				}
			}
		}
	}
	<-sig
	fmt.Println("\nxmppserver: shutting down")
	return nil
}
