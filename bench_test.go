// Package eactors hosts the per-figure testing.B benchmarks of the
// reproduction. Each BenchmarkFigN regenerates the measurements behind
// one figure of the paper's evaluation at benchmark-friendly scale; the
// full paper-scale sweeps live in cmd/eactors-bench.
//
// Custom metrics: req/s-style figures report "req/s"; the ping-pong
// figure reports MiB/s; Figure 1 reports ns/op of one dequeue.
package eactors

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/eactors/eactors-go/internal/bench"
	"github.com/eactors/eactors-go/internal/sgx"
	"github.com/eactors/eactors-go/internal/smc"
	"github.com/eactors/eactors-go/internal/xmpp"
	"github.com/eactors/eactors-go/internal/xmpp/baseline"
	"github.com/eactors/eactors-go/internal/xmpp/client"
)

// --- Figure 1: concurrent dequeue from a mutex-protected stack -------

func BenchmarkFig1MutexStack(b *testing.B) {
	for _, threads := range []int{2, 8} {
		b.Run(fmt.Sprintf("pthread/threads=%d", threads), func(b *testing.B) {
			benchPthreadStack(b, threads)
		})
		b.Run(fmt.Sprintf("sgx/threads=%d", threads), func(b *testing.B) {
			benchSGXStack(b, threads)
		})
	}
}

func benchPthreadStack(b *testing.B, threads int) {
	var mu sync.Mutex
	items := b.N
	var wg sync.WaitGroup
	b.ResetTimer()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if items == 0 {
					mu.Unlock()
					return
				}
				items--
				// Single-core interleaving device (see internal/bench
				// fig1.go): descheduling the holder is what makes the
				// consumers contend at all on a 1-CPU host. Applied to
				// both variants identically.
				runtime.Gosched()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func benchSGXStack(b *testing.B, threads int) {
	platform := sgx.NewPlatform()
	enclave, err := platform.CreateEnclave("bench-stack", 64*1024)
	if err != nil {
		b.Fatal(err)
	}
	defer platform.DestroyEnclave(enclave)
	mu := sgx.NewMutex(platform)
	items := b.N
	var wg sync.WaitGroup
	b.ResetTimer()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := sgx.NewContext(platform)
			if err := ctx.Enter(enclave); err != nil {
				return
			}
			defer ctx.Exit()
			for {
				mu.Lock(ctx)
				if items == 0 {
					mu.Unlock(ctx)
					return
				}
				items--
				runtime.Gosched() // see benchPthreadStack
				mu.Unlock(ctx)
			}
		}()
	}
	wg.Wait()
}

// --- Figure 11: inter-enclave ping-pong ------------------------------

func BenchmarkFig11PingPong(b *testing.B) {
	for _, size := range []int{16, 32 << 10, 128 << 10} {
		b.Run(fmt.Sprintf("Native/size=%d", size), func(b *testing.B) {
			benchNativePingPong(b, size)
		})
		b.Run(fmt.Sprintf("EA/size=%d", size), func(b *testing.B) {
			benchEAPingPong(b, size, false)
		})
		b.Run(fmt.Sprintf("EA-ENC/size=%d", size), func(b *testing.B) {
			benchEAPingPong(b, size, true)
		})
		b.Run(fmt.Sprintf("EA-BATCH/size=%d", size), func(b *testing.B) {
			benchEAPingPongBatched(b, size, false)
		})
		b.Run(fmt.Sprintf("EA-ENC-BATCH/size=%d", size), func(b *testing.B) {
			benchEAPingPongBatched(b, size, true)
		})
	}
}

func benchNativePingPong(b *testing.B, size int) {
	platform := sgx.NewPlatform()
	ping, err := platform.CreateEnclave("bping", 64*1024)
	if err != nil {
		b.Fatal(err)
	}
	defer platform.DestroyEnclave(ping)
	pong, err := platform.CreateEnclave("bpong", 64*1024)
	if err != nil {
		b.Fatal(err)
	}
	defer platform.DestroyEnclave(pong)

	msg := make([]byte, size)
	reply := make([]byte, size)
	ctx := sgx.NewContext(platform)
	b.SetBytes(int64(2 * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctx.Enter(ping); err != nil {
			b.Fatal(err)
		}
		err := ctx.OCall(msg, reply, func() {
			_ = ctx.ECall(pong, msg, reply, func() { copy(reply, msg) })
		})
		if err != nil {
			b.Fatal(err)
		}
		ctx.Exit()
	}
	reportMiBps(b, 2*size)
}

func benchEAPingPong(b *testing.B, size int, encrypted bool) {
	d, err := bench.PingPongEA(b.N, size, sgx.DefaultCostModel(), encrypted)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(2 * size))
	// The run times itself (runtime startup excluded); report its rates.
	b.ReportMetric(float64(b.N)/d.Seconds(), "pairs/s")
	b.ReportMetric((float64(b.N)*2*float64(size))/(1<<20)/d.Seconds(), "MiB/s")
}

// fig11Batch is the burst size of the batched fig11 variant: large
// enough to amortise the per-message pool/mbox/doorbell costs, small
// enough to stay within a body invocation's drain budget.
const fig11Batch = 16

func benchEAPingPongBatched(b *testing.B, size int, encrypted bool) {
	d, err := bench.PingPongEABatched(b.N, size, fig11Batch, sgx.DefaultCostModel(), encrypted)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(2 * size))
	b.ReportMetric(float64(b.N)/d.Seconds(), "pairs/s")
	b.ReportMetric((float64(b.N)*2*float64(size))/(1<<20)/d.Seconds(), "MiB/s")
}

func reportMiBps(b *testing.B, bytesPerOp int) {
	b.ReportMetric(float64(b.N)*float64(bytesPerOp)/(1<<20)/b.Elapsed().Seconds(), "MiB/s")
}

// --- Figures 12/13: secure multi-party computation --------------------

func BenchmarkFig12SMCPlain(b *testing.B)   { benchSMC(b, false) }
func BenchmarkFig13SMCDynamic(b *testing.B) { benchSMC(b, true) }

func benchSMC(b *testing.B, dynamic bool) {
	for _, parties := range []int{3, 8} {
		for _, dim := range []int{1, 1000} {
			b.Run(fmt.Sprintf("EC/parties=%d/dim=%d", parties, dim), func(b *testing.B) {
				svc, err := smc.NewSDK(smc.Options{
					Parties: parties, Dim: dim, Dynamic: dynamic,
					Platform: sgx.NewPlatform(),
				})
				if err != nil {
					b.Fatal(err)
				}
				defer svc.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := svc.Round(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
			})
			b.Run(fmt.Sprintf("EA/parties=%d/dim=%d", parties, dim), func(b *testing.B) {
				svc, err := smc.StartEA(smc.Options{
					Parties: parties, Dim: dim, Dynamic: dynamic,
					Platform: sgx.NewPlatform(),
				})
				if err != nil {
					b.Fatal(err)
				}
				defer svc.Stop()
				base := svc.Rounds()
				b.ResetTimer()
				svc.WaitRounds(base + uint64(b.N))
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
			})
			// NET is the classical distributed deployment the use case
			// replaces: the same protocol over loopback TCP (Section
			// 5.2's motivation for co-locating the parties as enclaves).
			b.Run(fmt.Sprintf("NET/parties=%d/dim=%d", parties, dim), func(b *testing.B) {
				svc, err := smc.StartNetworked(smc.Options{
					Parties: parties, Dim: dim, Dynamic: dynamic,
					Platform: sgx.NewPlatform(),
				})
				if err != nil {
					b.Fatal(err)
				}
				defer svc.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := svc.Round(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
			})
		}
	}
}

// --- Figures 14-17: XMPP messaging service ----------------------------

// benchO2ORoundTrips drives b.N send+response round trips through one
// sender/receiver pair against the given address.
func benchO2ORoundTrips(b *testing.B, addr string) {
	recv, err := client.Dial(addr, "bench-recv", 30*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	send, err := client.Dial(addr, "bench-send", 30*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer send.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			msg, err := recv.ReadMessage(5 * time.Second)
			if err != nil {
				return
			}
			if err := recv.SendMessage(msg.From, msg.Body); err != nil {
				return
			}
		}
	}()

	payload := "0123456789abcdef0123456789abcdef0123456789abcdef"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := send.SendMessage("bench-recv", payload); err != nil {
			b.Fatal(err)
		}
		if _, err := send.ReadMessage(10 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	_ = recv.Close()
	<-done
}

func startEAServer(b *testing.B, shards, enclaves int, trusted bool) *xmpp.Server {
	srv, err := xmpp.Start(xmpp.Options{
		Shards:       shards,
		Trusted:      trusted,
		EnclaveCount: enclaves,
		Platform:     sgx.NewPlatform(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Stop)
	return srv
}

func BenchmarkFig14XMPPScalability(b *testing.B) {
	b.Run("EJB", func(b *testing.B) {
		srv, err := baseline.Start(baseline.Options{Kind: baseline.EjabberdKind})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Stop()
		benchO2ORoundTrips(b, srv.Addr())
	})
	b.Run("JBD2", func(b *testing.B) {
		srv, err := baseline.Start(baseline.Options{Kind: baseline.JabberD2Kind})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Stop()
		benchO2ORoundTrips(b, srv.Addr())
	})
	for name, shards := range map[string]int{"EA3": 1, "EA6": 2, "EA48": 16} {
		b.Run(name, func(b *testing.B) {
			srv := startEAServer(b, shards, shards, true)
			benchO2ORoundTrips(b, srv.Addr())
		})
	}
}

func BenchmarkFig15GroupChat(b *testing.B) {
	const members = 10
	run := func(b *testing.B, addr string) {
		clients := make([]*client.Client, members)
		for i := range clients {
			c, err := client.Dial(addr, fmt.Sprintf("m%d", i), 30*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if err := c.JoinRoom("bench"); err != nil {
				b.Fatal(err)
			}
			clients[i] = c
		}
		time.Sleep(200 * time.Millisecond)

		stop := make(chan struct{})
		var wg sync.WaitGroup
		for _, c := range clients[2:] {
			wg.Add(1)
			go func(c *client.Client) {
				defer wg.Done()
				for {
					if _, err := c.ReadMessage(300 * time.Millisecond); err != nil {
						select {
						case <-stop:
							return
						default:
						}
					}
				}
			}(c)
		}
		sender, monitor := clients[0], clients[1]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sender.SendGroupMessage("bench", "group payload"); err != nil {
				b.Fatal(err)
			}
			if _, err := monitor.ReadMessage(10 * time.Second); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		close(stop)
		wg.Wait()
	}

	b.Run("JBD2-SSL", func(b *testing.B) {
		srv, err := baseline.Start(baseline.Options{Kind: baseline.JabberD2Kind, SSL: true})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Stop()
		run(b, srv.Addr())
	})
	b.Run("EA-trusted", func(b *testing.B) {
		srv := startEAServer(b, 1, 1, true)
		run(b, srv.Addr())
	})
	b.Run("EA-untrusted", func(b *testing.B) {
		srv := startEAServer(b, 1, 0, false)
		run(b, srv.Addr())
	})
}

func BenchmarkFig16EnclaveCount(b *testing.B) {
	for _, enclaves := range []int{1, 2, 16} {
		b.Run(fmt.Sprintf("enclaves=%d", enclaves), func(b *testing.B) {
			srv := startEAServer(b, 16, enclaves, true)
			benchO2ORoundTrips(b, srv.Addr())
		})
	}
}

func BenchmarkFig17TrustedOverhead(b *testing.B) {
	for _, mode := range []struct {
		name    string
		trusted bool
	}{{"trusted", true}, {"untrusted", false}} {
		for name, shards := range map[string]int{"EA3": 1, "EA48": 16} {
			b.Run(name+"/"+mode.name, func(b *testing.B) {
				srv := startEAServer(b, shards, 1, mode.trusted)
				benchO2ORoundTrips(b, srv.Addr())
			})
		}
	}
}
